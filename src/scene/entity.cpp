#include "scene/entity.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace rfidsim::scene {

Entity::Entity(std::string name, Body body, rf::Material body_material,
               std::unique_ptr<Trajectory> trajectory, double content_fill)
    : name_(std::move(name)),
      body_(body),
      body_material_(body_material),
      content_fill_(content_fill),
      trajectory_(std::move(trajectory)) {
  require(trajectory_ != nullptr, "Entity: trajectory must not be null");
  require(content_fill >= 0.0 && content_fill <= 1.0,
          "Entity: content_fill must be in [0, 1]");
}

Entity::Entity(const Entity& other)
    : name_(other.name_),
      body_(other.body_),
      body_material_(other.body_material_),
      content_fill_(other.content_fill_),
      trajectory_(other.trajectory_->clone()),
      tags_(other.tags_) {}

Entity& Entity::operator=(const Entity& other) {
  if (this == &other) return *this;
  name_ = other.name_;
  body_ = other.body_;
  body_material_ = other.body_material_;
  content_fill_ = other.content_fill_;
  trajectory_ = other.trajectory_->clone();
  tags_ = other.tags_;
  return *this;
}

std::size_t Entity::add_tag(Tag tag) {
  tags_.push_back(tag);
  return tags_.size() - 1;
}

Vec3 Entity::to_world_direction(const Vec3& local, const Pose& pose) const {
  const Vec3 fwd = pose.frame.forward;  // local +x
  const Vec3 up = pose.frame.up;        // local +z
  const Vec3 right = fwd.cross(up);     // local +y... see note below.
  // Entity local frame convention: +x travel, +y toward reader, +z up.
  // With world forward = +x and up = +z, right() = forward x up = -y, so
  // the local +y axis maps to -right.
  return fwd * local.x - right * local.y + up * local.z;
}

Vec3 Entity::tag_position(std::size_t tag_index, double t_s) const {
  return tag_position(tag_index, pose_at(t_s));
}

Vec3 Entity::tag_dipole_axis(std::size_t tag_index, double t_s) const {
  return tag_dipole_axis(tag_index, pose_at(t_s));
}

Vec3 Entity::tag_patch_normal(std::size_t tag_index, double t_s) const {
  return tag_patch_normal(tag_index, pose_at(t_s));
}

Vec3 Entity::tag_position(std::size_t tag_index, const Pose& pose) const {
  require(tag_index < tags_.size(), "Entity::tag_position: tag index out of range");
  return pose.position + to_world_direction(tags_[tag_index].mount.local_position, pose);
}

Vec3 Entity::tag_dipole_axis(std::size_t tag_index, const Pose& pose) const {
  require(tag_index < tags_.size(), "Entity::tag_dipole_axis: tag index out of range");
  return to_world_direction(tags_[tag_index].mount.local_dipole_axis, pose).normalized();
}

Vec3 Entity::tag_patch_normal(std::size_t tag_index, const Pose& pose) const {
  require(tag_index < tags_.size(), "Entity::tag_patch_normal: tag index out of range");
  return to_world_direction(tags_[tag_index].mount.local_patch_normal, pose).normalized();
}

std::optional<double> Entity::body_chord(const Segment& seg, double t_s,
                                         double skip_margin_m) const {
  return body_chord(seg, pose_at(t_s), skip_margin_m);
}

std::optional<double> Entity::body_chord(const Segment& seg, const Pose& pose,
                                         double skip_margin_m) const {
  if (const auto* box = std::get_if<BoxBody>(&body_)) {
    Aabb aabb;
    aabb.centre = pose.position;
    aabb.extents = box->extents * content_fill_ - Vec3{1.0, 1.0, 1.0} * (2.0 * skip_margin_m);
    if (aabb.extents.x <= 0.0 || aabb.extents.y <= 0.0 || aabb.extents.z <= 0.0) {
      return std::nullopt;
    }
    return chord_length(seg, aabb);
  }
  if (const auto* cyl = std::get_if<CylinderBody>(&body_)) {
    VerticalCylinder c;
    c.centre = pose.position;
    c.radius = std::max(cyl->radius * content_fill_ - skip_margin_m, 0.0);
    c.height = std::max(cyl->height * content_fill_ - 2.0 * skip_margin_m, 0.0);
    if (c.radius <= 0.0 || c.height <= 0.0) return std::nullopt;
    return chord_length(seg, c);
  }
  return std::nullopt;
}

double Entity::bounding_radius() const {
  if (const auto* box = std::get_if<BoxBody>(&body_)) {
    const Vec3 e = box->extents * content_fill_;
    // Half-diagonal of the margin-0 Aabb body_chord builds, plus a one-part-
    // in-1e9 inflation so a borderline rounding in the caller's distance
    // test can never reject a genuinely grazing segment.
    return 0.5 * std::sqrt(e.x * e.x + e.y * e.y + e.z * e.z) * (1.0 + 1e-9);
  }
  if (const auto* cyl = std::get_if<CylinderBody>(&body_)) {
    const double r = cyl->radius * content_fill_;
    const double hz = 0.5 * cyl->height * content_fill_;
    return std::sqrt(r * r + hz * hz) * (1.0 + 1e-9);
  }
  return 0.0;
}

double Entity::body_radius() const {
  if (const auto* box = std::get_if<BoxBody>(&body_)) {
    return 0.5 * std::sqrt(box->extents.x * box->extents.x + box->extents.y * box->extents.y);
  }
  if (const auto* cyl = std::get_if<CylinderBody>(&body_)) {
    return cyl->radius;
  }
  return 0.0;
}

std::string_view box_face_name(BoxFace face) {
  switch (face) {
    case BoxFace::Front: return "front";
    case BoxFace::Back: return "back";
    case BoxFace::Top: return "top";
    case BoxFace::Bottom: return "bottom";
    case BoxFace::SideNear: return "side (closer)";
    case BoxFace::SideFar: return "side (farther)";
  }
  return "unknown";
}

TagMount mount_on_box_face(BoxFace face, const Vec3& box_extents,
                           rf::Material content_material, double content_gap_m) {
  TagMount m;
  m.backing_material = content_material;
  m.backing_gap_m = content_gap_m;
  const double hx = box_extents.x * 0.5;
  const double hy = box_extents.y * 0.5;
  const double hz = box_extents.z * 0.5;
  // The dipole axis lies flat on the face, horizontal where possible — the
  // common way a label is applied. The reader antenna is on the +y side.
  switch (face) {
    case BoxFace::Front:  // Leading face (+x), visible obliquely to the reader.
      m.local_position = {hx, 0.0, 0.0};
      m.local_patch_normal = {1.0, 0.0, 0.0};
      m.local_dipole_axis = {0.0, 1.0, 0.0};
      break;
    case BoxFace::Back:
      m.local_position = {-hx, 0.0, 0.0};
      m.local_patch_normal = {-1.0, 0.0, 0.0};
      m.local_dipole_axis = {0.0, 1.0, 0.0};
      break;
    case BoxFace::Top:
      m.local_position = {0.0, 0.0, hz};
      m.local_patch_normal = {0.0, 0.0, 1.0};
      m.local_dipole_axis = {1.0, 0.0, 0.0};
      break;
    case BoxFace::Bottom:
      m.local_position = {0.0, 0.0, -hz};
      m.local_patch_normal = {0.0, 0.0, -1.0};
      m.local_dipole_axis = {1.0, 0.0, 0.0};
      break;
    case BoxFace::SideNear:  // Faces the reader (+y).
      m.local_position = {0.0, hy, 0.0};
      m.local_patch_normal = {0.0, 1.0, 0.0};
      m.local_dipole_axis = {1.0, 0.0, 0.0};
      break;
    case BoxFace::SideFar:
      m.local_position = {0.0, -hy, 0.0};
      m.local_patch_normal = {0.0, -1.0, 0.0};
      m.local_dipole_axis = {1.0, 0.0, 0.0};
      break;
  }
  return m;
}

std::string_view body_spot_name(BodySpot spot) {
  switch (spot) {
    case BodySpot::Front: return "front";
    case BodySpot::Back: return "back";
    case BodySpot::SideNear: return "side (closer)";
    case BodySpot::SideFar: return "side (farther)";
  }
  return "unknown";
}

TagMount mount_on_person(BodySpot spot, const CylinderBody& body) {
  TagMount m;
  m.backing_material = rf::Material::HumanBody;
  // "tags should not touch the body ... hanging from the belt or pocket"
  // (paper §3): a badge dangles ~1.5 cm off the body.
  m.backing_gap_m = 0.015;
  // Waist height relative to the body centre (centre is at height/2).
  const double waist_z = -body.height * 0.5 + 1.0;
  const double r = body.radius + m.backing_gap_m;
  // A belt-hung badge swings and settles tilted; its time-average dipole
  // axis sits diagonally in the card plane rather than cleanly vertical or
  // horizontal.
  const double diag = std::numbers::sqrt2 / 2.0;
  switch (spot) {
    case BodySpot::Front:  // Facing the walking direction (+x).
      m.local_position = {r, 0.0, waist_z};
      m.local_patch_normal = {1.0, 0.0, 0.0};
      m.local_dipole_axis = {0.0, diag, diag};
      break;
    case BodySpot::Back:
      m.local_position = {-r, 0.0, waist_z};
      m.local_patch_normal = {-1.0, 0.0, 0.0};
      m.local_dipole_axis = {0.0, diag, diag};
      break;
    case BodySpot::SideNear:  // Hip facing the reader (+y).
      m.local_position = {0.0, r, waist_z};
      m.local_patch_normal = {0.0, 1.0, 0.0};
      m.local_dipole_axis = {1.0, 0.0, 0.0};
      break;
    case BodySpot::SideFar:
      m.local_position = {0.0, -r, waist_z};
      m.local_patch_normal = {0.0, -1.0, 0.0};
      m.local_dipole_axis = {1.0, 0.0, 0.0};
      break;
  }
  return m;
}

}  // namespace rfidsim::scene
