// BatchPathEvaluator: the structure-of-arrays "many tags x many poses"
// form of PathEvaluator.
//
// PathEvaluator answers one (antenna, tag, time) query at a time, and pays
// for that generality on every call: each term re-derives the pose of every
// entity it touches through a virtual Trajectory::pose_at, so evaluating T
// tags against E entities costs O(T*E) pose derivations and re-runs every
// occlusion chord up to three times (occlusion, Fresnel, reflection all
// intersect the same ray against the same body). This evaluator restructures
// the same physics around the shape of the real workload — one reader round
// evaluates *every* tag in the scene at one time instant:
//
//  * per-entity poses are derived once per time step and shared by every
//    tag and every chord test (O(E) instead of O(T*E) virtual calls);
//  * per-tag world geometry (position, dipole axis, patch normal) lives in
//    contiguous arrays, computed once per time step and reused by the
//    coupling neighbourhood loop instead of re-derived per neighbour;
//  * the to-antenna vector / distance stage runs as a flat loop over SoA
//    double arrays — autovectorizable as-is, with an explicit SSE2 variant
//    behind -DRFIDSIM_SIMD=ON;
//  * each (tag, entity) occlusion chord is intersected once and shared by
//    the occlusion, Fresnel-grazing and reflection terms — and only
//    intersected at all when the ray's closest approach enters the
//    entity's bounding sphere (a reject that can only ever skip a
//    would-be nullopt, so no produced value changes);
//  * the per-entity term loops (chord, reflection, proximity, occlusion,
//    Fresnel) are fused into a single pass per tag, preserving each
//    accumulator's entity order.
//
// The contract that makes this refactor safe: results are BIT-IDENTICAL to
// the scalar PathEvaluator, which stays in the tree as the reference
// oracle. The kernel performs the same floating-point operations in the
// same order — hoisting only ever removes *redundant* recomputation of
// identical values, never reorders arithmetic — and the shared helpers
// (Entity::tag_position / body_chord pose overloads, every rf:: term) are
// the same compiled code both paths call. tests/scene/
// kernel_differential_test holds batch == scalar over hundreds of
// randomized scenes; the golden portal digests hold it over time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "rf/link_budget.hpp"
#include "scene/path_evaluator.hpp"
#include "scene/scene.hpp"

namespace rfidsim::scene {

/// Evaluates rf::PathTerms for every tag in the scene against one antenna
/// at one time instant, in the scene's flat (entity, tag) order — the order
/// Scene::all_tags() yields.
///
/// Shares EvaluatorParams, caching semantics and the PathCacheStats
/// counters with the scalar PathEvaluator: per (antenna, tag) slot, full
/// results are cached when the whole scene is static, pair-local terms when
/// the tag's own entity is static, and nothing when it moves (bypassed).
///
/// Not thread-safe: the caches and scratch arrays mutate on evaluate_all().
/// Give each worker its own evaluator, exactly as with PathEvaluator.
class BatchPathEvaluator {
 public:
  /// The evaluator holds a reference to the scene; the scene must outlive
  /// it and must not be mutated while the evaluator exists.
  BatchPathEvaluator(const Scene& scene, EvaluatorParams params = {});

  /// Flushes any unflushed cache tallies (see flush_metrics).
  ~BatchPathEvaluator();
  BatchPathEvaluator(const BatchPathEvaluator&) = delete;
  BatchPathEvaluator& operator=(const BatchPathEvaluator&) = delete;

  /// Evaluates every tag in the scene at time `t_s` against antenna
  /// `antenna_index`. `out` is resized to tag_count(); out[i] is
  /// bit-identical to PathEvaluator::evaluate(antenna_index,
  /// scene.all_tags()[i], t_s) on a scalar evaluator with the same params
  /// and call history.
  void evaluate_all(std::size_t antenna_index, double t_s,
                    std::vector<rf::PathTerms>& out);

  /// World tag positions (flat tag order) at the `t_s` of the most recent
  /// evaluate_all call — bit-identical to Entity::tag_position at that
  /// time. Valid only after evaluate_all; lets callers (the portal's
  /// shadow-fading sampler) skip their own pose derivations.
  const std::vector<Vec3>& tag_positions() const { return tag_pos_; }

  std::size_t tag_count() const { return tag_count_; }
  bool scene_static() const { return scene_static_; }
  const EvaluatorParams& params() const { return params_; }
  const Scene& scene() const { return scene_; }

  /// Cache tallies since construction or the last flush. Totals match the
  /// scalar evaluator's for the same evaluation sequence (one tally per
  /// tag per evaluate_all).
  const PathCacheStats& cache_stats() const { return cache_stats_; }

  /// Adds the local tallies to the obs registry's scene.path_cache.*
  /// counters (when observability is enabled) and zeroes them — the same
  /// counters the scalar evaluator feeds. Called by the destructor.
  void flush_metrics() const;

 private:
  /// Pair-local terms; mirrors PathEvaluator::PairTerms.
  struct PairTerms {
    Vec3 tag_position;
    double distance_m = 0.0;
    Decibel reader_gain;
    Decibel tag_gain;
    Decibel polarization_loss;
    Decibel coupling_loss;
    Decibel direct_image_loss;
    Decibel direct_multipath;
    Decibel scatter_material;
  };

  struct CacheSlot {
    bool pair_ready = false;
    bool full_ready = false;
    PairTerms pair;
    rf::PathTerms full;
  };

  /// Per-entity constants plus the pose hoisted out of the per-tag loops.
  struct EntityState {
    const Entity* entity = nullptr;
    bool is_static = false;
    rf::Material material{};
    bool reflective = false;
    bool absorber = false;  ///< HumanBody or Liquid (proximity term).
    double body_radius = 0.0;
    double chord_bound_m = 0.0;  ///< Entity::bounding_radius(); 0 = no body.
    std::size_t tag_begin = 0;  ///< Flat tag range [tag_begin, tag_end).
    std::size_t tag_end = 0;
    Pose pose;           ///< At geom_t_ (or the one static pose).
    bool pose_ready = false;
  };

  /// Refreshes per-entity poses and per-tag world geometry for time `t_s`.
  /// Static entities are derived once and kept (their pose is
  /// time-invariant by the is_static() contract, the same assumption the
  /// scalar cache makes).
  void refresh_geometry(double t_s);

  /// SoA stage: to-antenna vectors and clamped distances for all tags.
  /// The RFIDSIM_SIMD build runs this 2-wide in SSE2 registers with the
  /// identical per-element operation sequence (mul/add/sqrt/max are all
  /// correctly rounded), so it stays bit-identical to the scalar loop.
  void compute_distance_stage(const AntennaSite& antenna);

  PairTerms compute_pair_terms(const AntennaSite& antenna, std::size_t flat_tag) const;
  rf::PathTerms assemble(const PairTerms& pair, const AntennaSite& antenna,
                         std::size_t flat_tag);
  Decibel coupling_loss(std::size_t flat_tag) const;

  const Scene& scene_;
  EvaluatorParams params_;
  bool scene_static_ = false;
  std::size_t tag_count_ = 0;

  std::vector<EntityState> entities_;
  std::vector<std::size_t> tag_entity_;      ///< Flat tag -> entity index.
  std::vector<std::uint32_t> tag_in_entity_; ///< Flat tag -> index within entity.
  std::vector<rf::TagDesign> design_;
  std::vector<rf::Material> backing_;
  std::vector<double> backing_gap_;
  // The scatter-path image factor depends only on the mount (backing
  // material, gap) and time-invariant params, so it is computed once here —
  // the same call the scalar evaluator makes per query, hoisted, not
  // reassociated.
  std::vector<Decibel> scatter_material_;

  // Per-time-step tag geometry (flat tag order). tag_pos_ is the API-facing
  // Vec3 array; px_/py_/pz_ mirror it as SoA doubles for the distance stage.
  std::vector<Vec3> tag_pos_, tag_axis_, tag_normal_;
  std::vector<double> px_, py_, pz_;
  double geom_t_ = 0.0;
  bool geom_valid_ = false;

  // Distance-stage outputs (per tag, for the current antenna).
  std::vector<double> dx_, dy_, dz_, dist_;

  mutable std::vector<CacheSlot> cache_;  ///< [antenna * tag_count_ + flat tag].
  std::vector<unsigned char> full_pass_done_;  ///< Per antenna: all slots full_ready.
  mutable PathCacheStats cache_stats_;
};

}  // namespace rfidsim::scene
