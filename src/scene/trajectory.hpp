// Motion models for tracked entities.
//
// The paper's experiments move tags past an antenna in three ways: fixed in
// place (read-range test), on a cart/conveyor at ~1 m/s (object tests), and
// carried by a walking person (human tests, with the slight lateral sway a
// gait adds). Trajectory abstracts all three behind pose_at(t).
#pragma once

#include <memory>

#include "common/pose.hpp"

namespace rfidsim::scene {

/// Abstract motion model: where is the entity's local origin at time t,
/// and with what orientation. Entities do not rotate during a pass in any
/// of the paper's scenarios, so implementations keep a fixed frame.
class Trajectory {
 public:
  virtual ~Trajectory() = default;
  /// Pose of the entity origin at simulation time `t_s` (seconds).
  virtual Pose pose_at(double t_s) const = 0;
  /// Polymorphic copy, so scenes can be duplicated for parallel experiments.
  virtual std::unique_ptr<Trajectory> clone() const = 0;
  /// True iff pose_at(t) is the same for every t. Gates the PathEvaluator
  /// static-geometry cache (DESIGN.md §sweep): an implementation may only
  /// return true when its pose is provably time-invariant.
  virtual bool is_static() const { return false; }
};

/// An entity that never moves.
class StaticTrajectory final : public Trajectory {
 public:
  explicit StaticTrajectory(Pose pose) : pose_(pose) {}
  Pose pose_at(double) const override { return pose_; }
  std::unique_ptr<Trajectory> clone() const override {
    return std::make_unique<StaticTrajectory>(*this);
  }
  bool is_static() const override { return true; }

 private:
  Pose pose_;
};

/// Straight-line motion at constant velocity (cart / conveyor belt).
class LinearTrajectory final : public Trajectory {
 public:
  LinearTrajectory(Pose start, Vec3 velocity_mps)
      : start_(start), velocity_(velocity_mps) {}
  Pose pose_at(double t_s) const override {
    Pose p = start_;
    p.position += velocity_ * t_s;
    return p;
  }
  std::unique_ptr<Trajectory> clone() const override {
    return std::make_unique<LinearTrajectory>(*this);
  }
  bool is_static() const override { return velocity_.norm() == 0.0; }

 private:
  Pose start_;
  Vec3 velocity_;
};

/// Gait parameters of a WalkingTrajectory.
struct Gait {
  double sway_amplitude_m = 0.03;  ///< Lateral (y) sway amplitude.
  double bob_amplitude_m = 0.02;   ///< Vertical (z) bob amplitude.
  double cadence_hz = 1.8;         ///< Step frequency.
};

/// Walking motion: linear progress plus sinusoidal lateral sway and a small
/// vertical bob, the secondary motion of a human gait. The sway slightly
/// decorrelates successive read attempts, as observed with real subjects.
class WalkingTrajectory final : public Trajectory {
 public:
  WalkingTrajectory(Pose start, Vec3 velocity_mps, Gait gait = {})
      : start_(start), velocity_(velocity_mps), gait_(gait) {}
  Pose pose_at(double t_s) const override;
  std::unique_ptr<Trajectory> clone() const override {
    return std::make_unique<WalkingTrajectory>(*this);
  }
  bool is_static() const override {
    // A zero-velocity walker still sways and bobs in place.
    return velocity_.norm() == 0.0 && gait_.sway_amplitude_m == 0.0 &&
           gait_.bob_amplitude_m == 0.0;
  }

 private:
  Pose start_;
  Vec3 velocity_;
  Gait gait_;
};

}  // namespace rfidsim::scene
