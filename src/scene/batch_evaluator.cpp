#include "scene/batch_evaluator.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "rf/material.hpp"

#if defined(RFIDSIM_SIMD_ENABLED) && defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace rfidsim::scene {

BatchPathEvaluator::BatchPathEvaluator(const Scene& scene, EvaluatorParams params)
    : scene_(scene), params_(params) {
  require(!scene.antennas.empty(), "BatchPathEvaluator: scene has no antennas");

  entities_.reserve(scene.entities.size());
  scene_static_ = true;
  for (const Entity& entity : scene.entities) {
    EntityState es;
    es.entity = &entity;
    es.is_static = entity.is_static();
    es.material = entity.body_material();
    es.reflective = rf::is_reflective(es.material);
    es.absorber =
        es.material == rf::Material::HumanBody || es.material == rf::Material::Liquid;
    es.body_radius = entity.body_radius();
    es.chord_bound_m = entity.bounding_radius();
    es.tag_begin = tag_count_;
    scene_static_ = scene_static_ && es.is_static;
    for (std::size_t t = 0; t < entity.tags().size(); ++t) {
      const TagMount& mount = entity.tags()[t].mount;
      tag_entity_.push_back(entities_.size());
      tag_in_entity_.push_back(static_cast<std::uint32_t>(t));
      design_.push_back(mount.design);
      backing_.push_back(mount.backing_material);
      backing_gap_.push_back(mount.backing_gap_m);
      scatter_material_.push_back(
          -rf::image_factor_gain(mount.backing_material, mount.backing_gap_m,
                                 params_.scatter_sin_alpha, params_.frequency_hz) +
          Decibel(params_.scatter_excess_db));
      ++tag_count_;
    }
    es.tag_end = tag_count_;
    entities_.push_back(es);
  }

  tag_pos_.resize(tag_count_);
  tag_axis_.resize(tag_count_);
  tag_normal_.resize(tag_count_);
  px_.resize(tag_count_);
  py_.resize(tag_count_);
  pz_.resize(tag_count_);
  dx_.resize(tag_count_);
  dy_.resize(tag_count_);
  dz_.resize(tag_count_);
  dist_.resize(tag_count_);
  if (params_.static_geometry_cache) {
    cache_.resize(scene.antennas.size() * tag_count_);
  }
  full_pass_done_.assign(scene.antennas.size(), 0);
}

BatchPathEvaluator::~BatchPathEvaluator() { flush_metrics(); }

void BatchPathEvaluator::flush_metrics() const {
  if (obs::hooks_enabled()) {
    static const struct Counters {
      obs::Counter& full_hits = obs::counter("scene.path_cache.full_hits");
      obs::Counter& full_misses = obs::counter("scene.path_cache.full_misses");
      obs::Counter& pair_hits = obs::counter("scene.path_cache.pair_hits");
      obs::Counter& pair_misses = obs::counter("scene.path_cache.pair_misses");
      obs::Counter& bypassed = obs::counter("scene.path_cache.bypassed");
    } c;
    c.full_hits.add(cache_stats_.full_hits);
    c.full_misses.add(cache_stats_.full_misses);
    c.pair_hits.add(cache_stats_.pair_hits);
    c.pair_misses.add(cache_stats_.pair_misses);
    c.bypassed.add(cache_stats_.bypassed);
  }
  cache_stats_ = PathCacheStats{};
}

void BatchPathEvaluator::refresh_geometry(double t_s) {
  // A fully static scene never needs a second pass; otherwise redo the
  // moving entities whenever the time changes.
  if (geom_valid_ && (scene_static_ || t_s == geom_t_)) return;
  for (EntityState& es : entities_) {
    if (es.is_static && es.pose_ready) continue;
    es.pose = es.entity->pose_at(t_s);
    es.pose_ready = true;
    for (std::size_t i = es.tag_begin; i < es.tag_end; ++i) {
      const std::size_t t = i - es.tag_begin;
      const Vec3 pos = es.entity->tag_position(t, es.pose);
      tag_pos_[i] = pos;
      px_[i] = pos.x;
      py_[i] = pos.y;
      pz_[i] = pos.z;
      tag_axis_[i] = es.entity->tag_dipole_axis(t, es.pose);
      tag_normal_[i] = es.entity->tag_patch_normal(t, es.pose);
    }
  }
  geom_t_ = t_s;
  geom_valid_ = true;
}

void BatchPathEvaluator::compute_distance_stage(const AntennaSite& antenna) {
  const double ax = antenna.pose.position.x;
  const double ay = antenna.pose.position.y;
  const double az = antenna.pose.position.z;
  const std::size_t n = tag_count_;
  std::size_t i = 0;
#if defined(RFIDSIM_SIMD_ENABLED) && defined(__SSE2__)
  // Two lanes of the exact scalar operation sequence: every op used here
  // (mul, add, sub, sqrt, max) is IEEE correctly rounded elementwise, so
  // each lane produces the bit pattern the scalar tail loop would.
  const __m128d vax = _mm_set1_pd(ax);
  const __m128d vay = _mm_set1_pd(ay);
  const __m128d vaz = _mm_set1_pd(az);
  const __m128d vmin = _mm_set1_pd(0.01);
  for (; i + 2 <= n; i += 2) {
    const __m128d x = _mm_sub_pd(vax, _mm_loadu_pd(&px_[i]));
    const __m128d y = _mm_sub_pd(vay, _mm_loadu_pd(&py_[i]));
    const __m128d z = _mm_sub_pd(vaz, _mm_loadu_pd(&pz_[i]));
    _mm_storeu_pd(&dx_[i], x);
    _mm_storeu_pd(&dy_[i], y);
    _mm_storeu_pd(&dz_[i], z);
    // Vec3::norm association: (x*x + y*y) + z*z.
    const __m128d n2 = _mm_add_pd(
        _mm_add_pd(_mm_mul_pd(x, x), _mm_mul_pd(y, y)), _mm_mul_pd(z, z));
    _mm_storeu_pd(&dist_[i], _mm_max_pd(_mm_sqrt_pd(n2), vmin));
  }
#endif
  for (; i < n; ++i) {
    const double x = ax - px_[i];
    const double y = ay - py_[i];
    const double z = az - pz_[i];
    dx_[i] = x;
    dy_[i] = y;
    dz_[i] = z;
    // Same association as Vec3::norm (dot product folds left).
    dist_[i] = std::max(std::sqrt((x * x + y * y) + z * z), 0.01);
  }
}

void BatchPathEvaluator::evaluate_all(std::size_t antenna_index, double t_s,
                                      std::vector<rf::PathTerms>& out) {
  require(antenna_index < scene_.antennas.size(),
          "BatchPathEvaluator: antenna index out of range");
  const AntennaSite& antenna = scene_.antennas[antenna_index];
  out.resize(tag_count_);
  refresh_geometry(t_s);

  const bool cache_on = params_.static_geometry_cache;
  // When every slot for this antenna already holds a full cached result the
  // pair stage has nothing to feed; skip it.
  const bool all_cached = cache_on && scene_static_ && full_pass_done_[antenna_index];
  if (!all_cached) compute_distance_stage(antenna);

  for (std::size_t i = 0; i < tag_count_; ++i) {
    if (!cache_on || !entities_[tag_entity_[i]].is_static) {
      ++cache_stats_.bypassed;
      out[i] = assemble(compute_pair_terms(antenna, i), antenna, i);
      continue;
    }
    CacheSlot& slot = cache_[antenna_index * tag_count_ + i];
    if (scene_static_) {
      if (!slot.full_ready) {
        ++cache_stats_.full_misses;
        slot.full = assemble(compute_pair_terms(antenna, i), antenna, i);
        slot.full_ready = true;
      } else {
        ++cache_stats_.full_hits;
      }
      out[i] = slot.full;
      continue;
    }
    if (!slot.pair_ready) {
      ++cache_stats_.pair_misses;
      slot.pair = compute_pair_terms(antenna, i);
      slot.pair_ready = true;
    } else {
      ++cache_stats_.pair_hits;
    }
    out[i] = assemble(slot.pair, antenna, i);
  }

  if (cache_on && scene_static_) full_pass_done_[antenna_index] = 1;
}

BatchPathEvaluator::PairTerms BatchPathEvaluator::compute_pair_terms(
    const AntennaSite& antenna, std::size_t flat_tag) const {
  const std::size_t i = flat_tag;
  const Vec3 tag_pos = tag_pos_[i];
  const Vec3 to_antenna{dx_[i], dy_[i], dz_[i]};

  PairTerms pair;
  pair.tag_position = tag_pos;
  pair.distance_m = dist_[i];

  pair.reader_gain = antenna.pattern.gain_toward(antenna.pose, tag_pos);
  const Vec3 axis = tag_axis_[i];
  const Vec3 design_normal = tag_normal_[i];
  pair.tag_gain =
      rf::tag_design_gain(design_[i], params_.tag_antenna, axis, design_normal,
                          to_antenna);

  pair.polarization_loss = rf::polarization_mismatch(
      antenna.pattern.params().circular_polarization, antenna.pose.frame.up, axis,
      -to_antenna);
  if (antenna.pattern.params().circular_polarization) {
    const double off =
        angle_between(antenna.pose.frame.forward, tag_pos - antenna.pose.position);
    const double frac = std::min(off / (std::numbers::pi / 2.0), 1.0);
    pair.polarization_loss +=
        Decibel(antenna.pattern.params().axial_ratio_loss_db_at_90deg * frac * frac);
  }

  pair.coupling_loss = coupling_loss(i);

  const Vec3 dir = to_antenna.normalized();
  const double sin_alpha = std::max(design_normal.dot(dir), 0.02);
  pair.direct_image_loss = -rf::image_factor_gain(
      backing_[i], backing_gap_[i], sin_alpha, params_.frequency_hz);
  pair.direct_multipath = params_.two_ray.gain(
      antenna.pose.position.z, tag_pos.z, std::hypot(to_antenna.x, to_antenna.y),
      params_.frequency_hz);

  pair.scatter_material = scatter_material_[i];

  return pair;
}

Decibel BatchPathEvaluator::coupling_loss(std::size_t flat_tag) const {
  const EntityState& es = entities_[tag_entity_[flat_tag]];
  const Vec3 pos = tag_pos_[flat_tag];
  const Vec3 axis = tag_axis_[flat_tag];

  // Same "two largest pairwise losses" rule as the scalar evaluator, over
  // the cached per-tag geometry instead of per-neighbour pose derivations.
  double worst = 0.0;
  double second = 0.0;
  for (std::size_t j = es.tag_begin; j < es.tag_end; ++j) {
    if (j == flat_tag) continue;
    const double spacing = pos.distance_to(tag_pos_[j]);
    if (spacing > params_.coupling_neighbourhood_m) continue;
    const double alignment = std::abs(axis.dot(tag_axis_[j]));
    const double loss =
        rf::pairwise_coupling_loss(spacing, params_.coupling, alignment).value();
    if (loss > worst) {
      second = worst;
      worst = loss;
    } else if (loss > second) {
      second = loss;
    }
  }
  return Decibel(std::min(worst + second, params_.coupling.contact_loss_db * 1.5));
}

rf::PathTerms BatchPathEvaluator::assemble(const PairTerms& pair,
                                           const AntennaSite& antenna,
                                           std::size_t flat_tag) {
  const Vec3& tag_pos = pair.tag_position;
  const Segment path{tag_pos, antenna.pose.position};
  const std::size_t own = tag_entity_[flat_tag];
  const std::size_t n_entities = entities_.size();

  rf::PathTerms terms;
  terms.distance_m = pair.distance_m;
  terms.reader_gain = pair.reader_gain;
  terms.tag_gain = pair.tag_gain;
  terms.polarization_loss = pair.polarization_loss;
  terms.coupling_loss = pair.coupling_loss;

  // One fused pass over the entities. The scalar path walks them up to
  // five times (chord, reflection, proximity, occlusion, Fresnel) and
  // intersects the same ray against the same body up to three times; here
  // each accumulator still sees the entities in the same ascending order,
  // so every sum folds in the same sequence and stays bit-identical — the
  // fusion only moves loop overhead, never arithmetic. The margin-0 chord
  // is intersected once, and only when the ray's closest approach enters
  // the entity's bounding sphere: skipping it can only ever skip a
  // would-be nullopt (the sphere contains the whole attenuating core), so
  // no produced value changes. The closest-approach point doubles as the
  // Fresnel test input — the same closest_point(path, centre) call the
  // scalar Fresnel term makes.
  const Vec3 to_antenna_dir = (path.to - path.from).normalized();
  const bool fresnel_on = params_.fresnel_max_db > 0.0;
  const bool proximity_on = params_.proximity_loss_db > 0.0;
  double best_reflection_db = 0.0;
  double proximity_db = 0.0;
  double fresnel_sum_db = 0.0;
  Decibel occlusion{0.0};

  for (std::size_t e = 0; e < n_entities; ++e) {
    const EntityState& es = entities_[e];
    if (e == own) {
      // The tag's own body is tested with the self-occlusion margin. The
      // ray starts on the body surface, so the sphere reject never fires.
      if (const auto chord =
              es.entity->body_chord(path, es.pose, params_.self_occlusion_margin_m)) {
        occlusion += rf::penetration_loss(es.material, *chord);
      }
      continue;
    }

    bool has_chord = false;
    PointToSegment cp;
    bool cp_ready = false;
    if (es.chord_bound_m > 0.0) {
      cp = closest_point(path, es.pose.position);
      cp_ready = true;
      if (cp.distance <= es.chord_bound_m) {
        if (const auto chord = es.entity->body_chord(path, es.pose, 0.0)) {
          has_chord = true;
          occlusion += rf::penetration_loss(es.material, *chord);
        }
      }
    }

    // Reflection bonus (scalar: reflection_gain).
    if (es.reflective && !has_chord) {
      const Vec3 centre = es.pose.position;
      const double range = centre.distance_to(path.from);
      if (range <= params_.reflector_range_m) {
        const Vec3 to_reflector = (centre - path.from).normalized();
        const double cosine = to_reflector.dot(to_antenna_dir);
        if (cosine <= 0.5) {  // Outside the forward cone.
          const double strength = 1.0 - range / params_.reflector_range_m;
          const double angle_weight = (0.5 - cosine) / 1.5;
          best_reflection_db =
              std::max(best_reflection_db, params_.reflection_bonus_db * strength * angle_weight);
        }
      }
    }

    // Proximity absorption by adjacent water-rich bodies.
    if (proximity_on && es.absorber) {
      const double gap =
          std::max(tag_pos.distance_to(es.pose.position) - es.body_radius, 0.0);
      if (gap < params_.proximity_range_m) {
        proximity_db += params_.proximity_loss_db * (1.0 - gap / params_.proximity_range_m);
      }
    }

    // Fresnel grazing blockage (scalar: fresnel_blockage). body_radius can
    // be positive while the fill-scaled chord bound is zero (empty body),
    // in which case the closest point is computed here instead.
    if (fresnel_on && !has_chord && es.body_radius > 0.0) {
      if (!cp_ready) cp = closest_point(path, es.pose.position);
      if (cp.t >= 0.2 && cp.t <= 0.95) {
        const double clearance = std::max(cp.distance - es.body_radius, 0.0);
        if (clearance < params_.fresnel_radius_m) {
          const double frac = 1.0 - clearance / params_.fresnel_radius_m;
          fresnel_sum_db += params_.fresnel_max_db * frac * frac;
        }
      }
    }
  }

  terms.reflection_gain = Decibel(best_reflection_db);
  terms.blockage_loss = Decibel(proximity_db);
  const Decibel fresnel =
      fresnel_on ? Decibel(std::min(fresnel_sum_db, params_.fresnel_max_db * 1.5))
                 : Decibel(0.0);

  const Decibel direct_material = pair.direct_image_loss + occlusion + fresnel;
  const Decibel scatter_tag_gain{params_.scatter_tag_gain_dbi};

  const double direct_score =
      terms.tag_gain.value() - direct_material.value() + pair.direct_multipath.value();
  const double scatter_score = scatter_tag_gain.value() - pair.scatter_material.value();
  if (scatter_score > direct_score) {
    terms.tag_gain = scatter_tag_gain;
    terms.material_loss = pair.scatter_material;
    terms.multipath_gain = Decibel(0.0);
  } else {
    terms.material_loss = direct_material;
    terms.multipath_gain = pair.direct_multipath;
  }

  return terms;
}

}  // namespace rfidsim::scene
