// Tag identity and mounting description.
//
// A tag's reliability depends on *how* it is mounted at least as much as on
// where: the dipole axis orientation drives the antenna pattern and
// polarization terms, and the backing material/gap drives the detuning loss
// (a tag flush on a router's metal casing is nearly dead — paper Table 1,
// "Top": 29%).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>

#include "common/vec3.hpp"
#include "rf/material.hpp"
#include "rf/tag_design.hpp"

namespace rfidsim::scene {

/// Strongly-typed tag identifier (stands in for the 96-bit EPC).
struct TagId {
  std::uint64_t value = 0;
  constexpr auto operator<=>(const TagId&) const = default;
};

/// How a tag is mounted on its parent entity, in the entity's local frame
/// (entity frame: +x = direction of travel, +y = toward the reader side,
/// +z = up; origin at the entity's geometric centre).
struct TagMount {
  /// Tag centre relative to the entity origin, metres.
  Vec3 local_position;
  /// Direction of the dipole axis (unit vector in the local frame).
  Vec3 local_dipole_axis{1.0, 0.0, 0.0};
  /// Outward normal of the face the tag is stuck to.
  Vec3 local_patch_normal{0.0, 1.0, 0.0};
  /// What is directly behind the tag (inside the parent object/body).
  rf::Material backing_material = rf::Material::Cardboard;
  /// Air/spacer gap between tag and the backing material, metres.
  double backing_gap_m = 0.02;
  /// Tag architecture (single dipole by default; see rf::TagDesign for the
  /// paper's future-work designs).
  rf::TagDesign design{};
};

/// A physical tag: identity plus mounting.
struct Tag {
  TagId id;
  TagMount mount;
};

}  // namespace rfidsim::scene

template <>
struct std::hash<rfidsim::scene::TagId> {
  std::size_t operator()(const rfidsim::scene::TagId& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value);
  }
};
