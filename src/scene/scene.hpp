// Scene: everything physical in one experiment.
//
// A Scene is the passive description — entities with tags, and antenna
// sites. Evaluating RF paths through it is PathEvaluator's job; driving the
// Gen 2 protocol over it is the system layer's job.
#pragma once

#include <cstddef>
#include <vector>

#include "common/pose.hpp"
#include "rf/antenna.hpp"
#include "scene/entity.hpp"

namespace rfidsim::scene {

/// A fixed reader-antenna installation.
struct AntennaSite {
  Pose pose;  ///< Position and boresight direction.
  rf::ReaderAntennaPattern pattern;
};

/// Addresses one tag in the scene: (entity index, tag index within entity).
struct TagAddress {
  std::size_t entity = 0;
  std::size_t tag = 0;
  constexpr auto operator<=>(const TagAddress&) const = default;
};

/// The physical contents of one experiment.
struct Scene {
  std::vector<Entity> entities;
  std::vector<AntennaSite> antennas;

  /// Enumerates every tag in the scene, in (entity, tag) order.
  std::vector<TagAddress> all_tags() const {
    std::vector<TagAddress> out;
    for (std::size_t e = 0; e < entities.size(); ++e) {
      for (std::size_t t = 0; t < entities[e].tags().size(); ++t) {
        out.push_back({e, t});
      }
    }
    return out;
  }

  /// Convenience: builds an antenna site at `position` whose boresight
  /// points along `facing` (typically toward the lane of travel).
  static AntennaSite make_antenna(const Vec3& position, const Vec3& facing,
                                  rf::ReaderAntennaPattern pattern = {}) {
    AntennaSite site;
    site.pose.position = position;
    site.pose.frame.forward = facing.normalized();
    // Pick any consistent up vector not parallel to facing.
    const Vec3 up_candidate =
        std::abs(site.pose.frame.forward.z) > 0.9 ? Vec3{1.0, 0.0, 0.0} : Vec3{0.0, 0.0, 1.0};
    site.pose.frame.up = up_candidate;
    site.pose.frame.orthonormalize();
    site.pattern = pattern;
    return site;
  }
};

}  // namespace rfidsim::scene
