#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>

namespace rfidsim::obs {

std::uint64_t trace_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

/// One thread's span ring. The writer thread and exporters synchronise on
/// the ring's own mutex; uncontended in steady state (exports are rare).
struct ThreadRing {
  std::mutex mutex;
  std::vector<TraceEvent> slots{std::vector<TraceEvent>(kTraceRingCapacity)};
  std::uint64_t written = 0;  ///< Monotonic; slot index is written % capacity.
  std::uint64_t dropped = 0;  ///< Retained spans overwritten by ring wrap.
  std::uint32_t tid = 0;

  void push(const TraceEvent& ev) {
    bool wrapped = false;
    {
      std::lock_guard lock(mutex);
      wrapped = written >= kTraceRingCapacity;
      if (wrapped) ++dropped;
      slots[written % kTraceRingCapacity] = ev;
      ++written;
    }
    // Wrap used to lose the span without a trace (so to speak): the tally
    // makes truncated exports diagnosable. Counter lookup is cached; one
    // atomic add per dropped span, nothing on the non-wrapping path.
    if (wrapped) {
      static Counter& drops = obs::counter("obs.trace.dropped_spans");
      drops.add(1);
    }
  }

  /// Oldest-to-newest copy of the retained events.
  void snapshot(std::vector<TraceEvent>& out) {
    std::lock_guard lock(mutex);
    const std::uint64_t kept = std::min<std::uint64_t>(written, kTraceRingCapacity);
    for (std::uint64_t i = written - kept; i < written; ++i) {
      out.push_back(slots[i % kTraceRingCapacity]);
    }
  }

  void clear() {
    std::lock_guard lock(mutex);
    written = 0;
    dropped = 0;
  }

  std::uint64_t dropped_count() {
    std::lock_guard lock(mutex);
    return dropped;
  }
};

/// Registry of every thread's ring. Rings are shared_ptrs so spans from
/// threads that have since exited still export.
struct Recorder {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadRing>> rings;

  std::shared_ptr<ThreadRing> register_thread() {
    auto ring = std::make_shared<ThreadRing>();
    std::lock_guard lock(mutex);
    ring->tid = static_cast<std::uint32_t>(rings.size());
    rings.push_back(ring);
    return ring;
  }

  std::vector<std::shared_ptr<ThreadRing>> all() {
    std::lock_guard lock(mutex);
    return rings;
  }
};

Recorder& recorder() {
  static Recorder instance;
  return instance;
}

ThreadRing& thread_ring() {
  thread_local std::shared_ptr<ThreadRing> ring = recorder().register_thread();
  return *ring;
}

thread_local std::uint32_t t_depth = 0;

}  // namespace

TraceSpan::TraceSpan(const char* name) : name_(name) {
  if (!trace_hooks_enabled()) return;
  active_ = true;
  depth_ = t_depth++;
  start_ns_ = trace_now_ns();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  const std::uint64_t end = trace_now_ns();
  --t_depth;
  ThreadRing& ring = thread_ring();
  ring.push(TraceEvent{.name = name_,
                       .start_ns = start_ns_,
                       .duration_ns = end - start_ns_,
                       .depth = depth_,
                       .tid = ring.tid});
}

std::vector<TraceEvent> trace_snapshot() {
  std::vector<TraceEvent> out;
  for (const auto& ring : recorder().all()) ring->snapshot(out);
  std::sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    return a.start_ns != b.start_ns ? a.start_ns < b.start_ns : a.depth < b.depth;
  });
  return out;
}

void write_chrome_trace(std::ostream& out) {
  const std::vector<TraceEvent> events = trace_snapshot();
  std::uint64_t epoch = ~std::uint64_t{0};
  for (const TraceEvent& ev : events) epoch = std::min(epoch, ev.start_ns);

  out << std::fixed << std::setprecision(3);
  out << "{\"traceEvents\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& ev = events[i];
    if (i > 0) out << ',';
    // Span names are our own literals: no JSON escaping needed.
    out << "{\"name\":\"" << ev.name << "\",\"ph\":\"X\",\"pid\":0,\"tid\":"
        << ev.tid << ",\"ts\":" << static_cast<double>(ev.start_ns - epoch) / 1e3
        << ",\"dur\":" << static_cast<double>(ev.duration_ns) / 1e3 << '}';
  }
  out << "],\"displayTimeUnit\":\"ms\"}\n";
}

std::string chrome_trace_json() {
  std::ostringstream out;
  write_chrome_trace(out);
  return out.str();
}

void clear_trace() {
  for (const auto& ring : recorder().all()) ring->clear();
}

std::uint64_t trace_dropped_spans() {
  std::uint64_t total = 0;
  for (const auto& ring : recorder().all()) total += ring->dropped_count();
  return total;
}

}  // namespace rfidsim::obs
