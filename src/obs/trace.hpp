// rfidsim::obs — RAII trace spans over per-thread ring buffers.
//
// A TraceSpan brackets one unit of instrument work (a portal pass, a
// sweep, an upload) with wall-clock timestamps and records it into a
// fixed-capacity ring buffer owned by the recording thread, so the hot
// path never contends with other threads (each ring has its own lock,
// touched only by its writer and by exporters). The merged buffers export
// as Chrome trace_event JSON (chrome://tracing, Perfetto) — metric values
// go through MetricsRegistry instead (see metrics.hpp).
//
// Tracing is off by default (RFIDSIM_OBS=trace or set_trace_enabled(true)
// turns it on) and obeys the same feedback-free contract as metrics: span
// timestamps are wall-clock readings about the instrument and never feed
// back into simulated state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace rfidsim::obs {

/// One completed span, as stored in a ring and returned by snapshots.
struct TraceEvent {
  const char* name = nullptr;  ///< Static string (span names are literals).
  std::uint64_t start_ns = 0;  ///< steady_clock, process-relative.
  std::uint64_t duration_ns = 0;
  std::uint32_t depth = 0;  ///< Nesting depth within the recording thread.
  std::uint32_t tid = 0;    ///< Recording thread's registration index.
};

/// Scoped wall-clock timer. `name` must outlive the recorder (pass string
/// literals). Construction/destruction are a few nanoseconds when tracing
/// is disabled (one relaxed load and a branch).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  std::uint64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
  bool active_ = false;
};

/// Events per thread ring; the newest events win once a ring wraps.
inline constexpr std::size_t kTraceRingCapacity = 8192;

/// The clock TraceSpan stamps spans with: steady_clock nanoseconds,
/// process-relative. Shared with the structured log's opt-in wall_ns
/// field so every wall-clock reading in an obs dump is on one timeline.
std::uint64_t trace_now_ns();

/// Chronological snapshot of every thread's ring (merged, sorted by start
/// time). Safe to call while other threads keep recording.
std::vector<TraceEvent> trace_snapshot();

/// Chrome trace_event JSON ("X" complete events; ts/dur in microseconds,
/// rebased so the earliest span starts at 0). Schema in EXPERIMENTS.md.
void write_chrome_trace(std::ostream& out);
std::string chrome_trace_json();

/// Discards all recorded spans (ring registrations survive; the per-ring
/// drop tallies reset too).
void clear_trace();

/// Spans lost to ring wrap since the last clear_trace(), summed across
/// rings. The cumulative (never-reset) total is also published to the
/// obs.trace.dropped_spans counter — before this tally existed, a wrapped
/// ring truncated exports without any sign that spans were missing.
std::uint64_t trace_dropped_spans();

}  // namespace rfidsim::obs
