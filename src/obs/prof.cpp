#include "obs/prof.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <thread>

#include "obs/metrics.hpp"

#if defined(__linux__) && !defined(RFIDSIM_OBS_DISABLED)
#define RFIDSIM_PROF_HAS_TIMERS 1
#endif

#ifdef RFIDSIM_PROF_HAS_TIMERS
#include <errno.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

// Raw-struct fallbacks for libcs that support SIGEV_THREAD_ID delivery but
// do not expose the glibc convenience names.
#ifndef SIGEV_THREAD_ID
#define SIGEV_THREAD_ID 4
#endif
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif
#endif  // RFIDSIM_PROF_HAS_TIMERS

#if defined(__GLIBC__)
#include <cxxabi.h>
#include <execinfo.h>
#define RFIDSIM_PROF_HAS_SYMBOLS 1
#endif

namespace rfidsim::obs::prof {

namespace {

#ifdef RFIDSIM_PROF_HAS_TIMERS

/// One thread's sample storage. Single writer (the owning thread's SIGPROF
/// handler); readers synchronize through `written` (release/acquire) and
/// only run after stop() has waited out in-flight handlers via `busy`.
struct SampleRing {
  std::array<Sample, kSampleRingCapacity> slots;
  std::atomic<std::uint64_t> written{0};
  std::atomic_flag busy = ATOMIC_FLAG_INIT;
};

/// Per-thread registration. Registration itself is cheap (~100 bytes);
/// the multi-megabyte ring is only allocated when profiling first starts,
/// so pool workers in a never-profiled run cost nothing but this stub.
struct ThreadEntry {
  std::atomic<SampleRing*> ring{nullptr};  ///< Set once, under the mutex.
  std::shared_ptr<SampleRing> holder;      ///< Owns *ring; mutex-guarded.
  std::atomic<std::uint32_t> lane{kNoLane};
  std::atomic<bool> alive{true};
  pid_t tid = 0;
  timer_t timer{};
  bool timer_armed = false;  ///< Guarded by EntryRegistry::mutex.
};

struct EntryRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadEntry>> entries;
};

EntryRegistry& entry_registry() {
  static EntryRegistry* r = new EntryRegistry;  // Never destroyed: handlers
  return *r;                                    // may outlive static teardown.
}

std::atomic<bool> g_active{false};
std::atomic<std::uint64_t> g_recorded{0};
std::atomic<std::uint64_t> g_dropped{0};
std::atomic<std::uint32_t> g_interval_usec{997};
std::atomic<std::uint32_t> g_max_depth{kMaxFrames};
struct sigaction g_old_action;

thread_local ThreadEntry* t_entry = nullptr;

/// The SIGPROF handler. Async-signal-safe by construction: POD stores into
/// a preallocated slot, one primed backtrace() call, errno save/restore,
/// and a try-lock (`busy`) instead of any blocking primitive.
void sigprof_handler(int, siginfo_t*, void*) {
  ThreadEntry* entry = t_entry;
  if (entry == nullptr || !g_active.load(std::memory_order_relaxed)) return;
  SampleRing* ring = entry->ring.load(std::memory_order_acquire);
  if (ring == nullptr) return;
  if (ring->busy.test_and_set(std::memory_order_acquire)) return;
  const int saved_errno = errno;
  const std::uint64_t idx = ring->written.load(std::memory_order_relaxed);
  Sample& slot = ring->slots[idx % kSampleRingCapacity];
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  slot.wall_ns = static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
                 static_cast<std::uint64_t>(ts.tv_nsec);
  slot.lane = entry->lane.load(std::memory_order_relaxed);
  const int depth = ::backtrace(
      slot.frames.data(),
      static_cast<int>(g_max_depth.load(std::memory_order_relaxed)));
  slot.depth = depth > 0 ? static_cast<std::uint32_t>(depth) : 0;
  ring->written.store(idx + 1, std::memory_order_release);
  g_recorded.fetch_add(1, std::memory_order_relaxed);
  if (idx >= kSampleRingCapacity) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
  }
  errno = saved_errno;
  ring->busy.clear(std::memory_order_release);
}

/// Allocates the entry's ring if it does not exist yet. Caller holds
/// EntryRegistry::mutex; the release store publishes the fully constructed
/// ring to the handler.
void ensure_ring_locked(ThreadEntry& entry) {
  if (entry.holder) return;
  entry.holder = std::make_shared<SampleRing>();
  entry.ring.store(entry.holder.get(), std::memory_order_release);
}

/// Arms one thread's CPU-time timer. Caller holds EntryRegistry::mutex.
void arm_timer_locked(ThreadEntry& entry) {
  if (entry.timer_armed || !entry.alive.load(std::memory_order_relaxed)) return;
  ensure_ring_locked(entry);
  struct sigevent sev;
  std::memset(&sev, 0, sizeof sev);
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGPROF;
  sev.sigev_notify_thread_id = entry.tid;
  if (timer_create(CLOCK_THREAD_CPUTIME_ID, &sev, &entry.timer) != 0) return;
  const long interval_ns =
      static_cast<long>(g_interval_usec.load(std::memory_order_relaxed)) * 1000L;
  itimerspec spec{};
  spec.it_interval.tv_sec = interval_ns / 1000000000L;
  spec.it_interval.tv_nsec = interval_ns % 1000000000L;
  spec.it_value = spec.it_interval;
  if (timer_settime(entry.timer, 0, &spec, nullptr) != 0) {
    timer_delete(entry.timer);
    return;
  }
  entry.timer_armed = true;
}

void disarm_timer_locked(ThreadEntry& entry) {
  if (!entry.timer_armed) return;
  timer_delete(entry.timer);
  entry.timer_armed = false;
}

/// Thread-exit hook: disarm this thread's timer and mark the entry dead
/// (its retained samples stay dumpable, like flight-recorder rings).
struct ThreadRegistration {
  std::shared_ptr<ThreadEntry> entry;
  ~ThreadRegistration() {
    if (!entry) return;
    std::lock_guard lock(entry_registry().mutex);
    disarm_timer_locked(*entry);
    entry->alive.store(false, std::memory_order_relaxed);
    t_entry = nullptr;
  }
};

thread_local ThreadRegistration t_registration;

#endif  // RFIDSIM_PROF_HAS_TIMERS

/// Turns one backtrace_symbols() line into a frame name: the demangled
/// function (argument list stripped), the mangled symbol when demangling
/// fails, or the raw address when the frame has no symbol at all. Spaces
/// and semicolons are replaced — both are folded-format separators.
std::string frame_name(const char* symbol, void* addr) {
  std::string name;
#ifdef RFIDSIM_PROF_HAS_SYMBOLS
  if (symbol != nullptr) {
    const std::string s(symbol);
    const std::size_t open = s.find('(');
    const std::size_t plus = s.rfind('+');
    const std::size_t close = s.rfind(')');
    if (open != std::string::npos && plus != std::string::npos &&
        close != std::string::npos && open + 1 < plus && plus < close) {
      std::string mangled = s.substr(open + 1, plus - open - 1);
      if (!mangled.empty()) {
        int status = -1;
        char* demangled =
            abi::__cxa_demangle(mangled.c_str(), nullptr, nullptr, &status);
        if (status == 0 && demangled != nullptr) {
          name.assign(demangled);
          std::free(demangled);
          // Strip the argument list: stacks fold by function, not overload.
          if (const std::size_t args = name.find('('); args != std::string::npos) {
            name.erase(args);
          }
        } else {
          name = std::move(mangled);
        }
      }
    }
  }
#else
  (void)symbol;
#endif
  if (name.empty()) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%zx", reinterpret_cast<std::size_t>(addr));
    name = buf;
  }
  for (char& c : name) {
    if (c == ' ' || c == ';') c = '_';
  }
  return name;
}

/// Symbolizes each unique address once (backtrace_symbols is one malloc
/// per call — fine offline, forbidden in the handler).
std::map<void*, std::string> symbolize(const std::vector<Sample>& samples) {
  std::map<void*, std::string> names;
  std::vector<void*> unique;
  for (const Sample& sample : samples) {
    const std::size_t depth = std::min<std::size_t>(sample.depth, kMaxFrames);
    for (std::size_t i = 0; i < depth; ++i) {
      if (names.emplace(sample.frames[i], std::string()).second) {
        unique.push_back(sample.frames[i]);
      }
    }
  }
#ifdef RFIDSIM_PROF_HAS_SYMBOLS
  char** symbols = unique.empty()
                       ? nullptr
                       : ::backtrace_symbols(unique.data(),
                                             static_cast<int>(unique.size()));
  for (std::size_t i = 0; i < unique.size(); ++i) {
    names[unique[i]] =
        frame_name(symbols != nullptr ? symbols[i] : nullptr, unique[i]);
  }
  std::free(symbols);
#else
  for (void* addr : unique) names[addr] = frame_name(nullptr, addr);
#endif
  return names;
}

/// First retained frame index: the handler and the kernel signal
/// trampoline occupy the top two frames of every signal-captured stack.
std::size_t first_frame(const Sample& sample) {
  return sample.depth > 2 ? 2 : 0;
}

}  // namespace

void register_thread(std::uint32_t lane) {
#ifdef RFIDSIM_PROF_HAS_TIMERS
  if (t_entry != nullptr) {
    t_entry->lane.store(lane, std::memory_order_relaxed);
    return;
  }
  auto entry = std::make_shared<ThreadEntry>();
  entry->tid = static_cast<pid_t>(::syscall(SYS_gettid));
  entry->lane.store(lane, std::memory_order_relaxed);
  std::lock_guard lock(entry_registry().mutex);
  entry_registry().entries.push_back(entry);
  t_registration.entry = entry;
  t_entry = entry.get();
  if (g_active.load(std::memory_order_relaxed)) arm_timer_locked(*entry);
#else
  (void)lane;
#endif
}

bool start(const ProfilerConfig& config) {
#ifdef RFIDSIM_PROF_HAS_TIMERS
  if (!hooks_enabled()) return false;
  bool expected = false;
  if (!g_active.compare_exchange_strong(expected, true)) return false;
  g_interval_usec.store(std::max<std::uint32_t>(100, config.interval_usec),
                        std::memory_order_relaxed);
  g_max_depth.store(
      static_cast<std::uint32_t>(std::clamp<std::size_t>(config.max_depth, 1,
                                                         kMaxFrames)),
      std::memory_order_relaxed);
  // Prime backtrace(): its first call may allocate unwinder state, which
  // must never happen inside the handler.
  void* primer[4];
  ::backtrace(primer, 4);
  struct sigaction action;
  std::memset(&action, 0, sizeof action);
  action.sa_sigaction = sigprof_handler;
  action.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&action.sa_mask);
  if (sigaction(SIGPROF, &action, &g_old_action) != 0) {
    g_active.store(false, std::memory_order_relaxed);
    return false;
  }
  if (t_entry == nullptr) register_thread(kNoLane);
  std::lock_guard lock(entry_registry().mutex);
  for (const auto& entry : entry_registry().entries) arm_timer_locked(*entry);
  return true;
#else
  (void)config;
  return false;
#endif
}

void stop() {
#ifdef RFIDSIM_PROF_HAS_TIMERS
  if (!g_active.exchange(false)) return;
  std::vector<std::shared_ptr<ThreadEntry>> entries;
  {
    std::lock_guard lock(entry_registry().mutex);
    for (const auto& entry : entry_registry().entries) {
      disarm_timer_locked(*entry);
    }
    entries = entry_registry().entries;
  }
  // Wait out in-flight handlers: once each ring's busy flag has been
  // acquired here, every handler write happens-before the dump reads.
  for (const auto& entry : entries) {
    SampleRing* ring = entry->ring.load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    while (ring->busy.test_and_set(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    ring->busy.clear(std::memory_order_release);
  }
  sigaction(SIGPROF, &g_old_action, nullptr);
#endif
}

bool profiling_active() {
#ifdef RFIDSIM_PROF_HAS_TIMERS
  return g_active.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

std::uint64_t samples_recorded() {
#ifdef RFIDSIM_PROF_HAS_TIMERS
  return g_recorded.load(std::memory_order_relaxed);
#else
  return 0;
#endif
}

std::uint64_t samples_dropped() {
#ifdef RFIDSIM_PROF_HAS_TIMERS
  return g_dropped.load(std::memory_order_relaxed);
#else
  return 0;
#endif
}

std::vector<Sample> samples_snapshot() {
  std::vector<Sample> out;
#ifdef RFIDSIM_PROF_HAS_TIMERS
  std::lock_guard lock(entry_registry().mutex);
  for (const auto& entry : entry_registry().entries) {
    const SampleRing* ring = entry->holder.get();
    if (ring == nullptr) continue;
    const std::uint64_t written = ring->written.load(std::memory_order_acquire);
    const std::uint64_t retained =
        std::min<std::uint64_t>(written, kSampleRingCapacity);
    for (std::uint64_t i = written - retained; i < written; ++i) {
      out.push_back(ring->slots[i % kSampleRingCapacity]);
    }
  }
#endif
  return out;
}

std::map<std::string, std::uint64_t> fold_samples(
    const std::vector<Sample>& samples) {
  const std::map<void*, std::string> names = symbolize(samples);
  std::map<std::string, std::uint64_t> folded;
  for (const Sample& sample : samples) {
    const std::size_t depth = std::min<std::size_t>(sample.depth, kMaxFrames);
    const std::size_t start = first_frame(sample);
    if (depth <= start) continue;
    std::string stack;
    for (std::size_t i = depth; i > start; --i) {  // Root first.
      stack += names.at(sample.frames[i - 1]);
      if (i - 1 > start) stack += ';';
    }
    ++folded[stack];
  }
  return folded;
}

void write_folded(std::ostream& out) {
  for (const auto& [stack, count] : fold_samples(samples_snapshot())) {
    out << stack << " " << count << "\n";
  }
}

void write_profile_chrome_trace(std::ostream& out) {
  const std::vector<Sample> samples = samples_snapshot();
  const std::map<void*, std::string> names = symbolize(samples);
  out << "[";
  bool first = true;
  for (const Sample& sample : samples) {
    const std::size_t depth = std::min<std::size_t>(sample.depth, kMaxFrames);
    const std::size_t start = first_frame(sample);
    if (depth <= start) continue;
    if (!first) out << ",\n ";
    first = false;
    char ts[32];
    std::snprintf(ts, sizeof ts, "%.3f",
                  static_cast<double>(sample.wall_ns) / 1000.0);
    out << "{\"name\":\"" << names.at(sample.frames[start])
        << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":"
        << (sample.lane == kNoLane ? 0xffffu : sample.lane) << ",\"ts\":" << ts
        << "}";
  }
  out << "]\n";
}

bool dump_profile(const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) return false;
    write_folded(out);
    if (!out) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

void clear_profile() {
#ifdef RFIDSIM_PROF_HAS_TIMERS
  std::lock_guard lock(entry_registry().mutex);
  for (const auto& entry : entry_registry().entries) {
    if (entry->holder) entry->holder->written.store(0, std::memory_order_relaxed);
  }
  g_recorded.store(0, std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);
#endif
}

}  // namespace rfidsim::obs::prof
