// rfidsim::obs — low-overhead observability for the simulator.
//
// The simulator is a measurement instrument; this module makes the
// instrument itself observable: a process-wide registry of named counters,
// gauges and fixed-bucket log-scale histograms, populated by hooks in the
// hot layers (path-evaluator cache, Gen 2 inventory, portal, sweep engine,
// ingest/upload, fault schedules) and exported in Prometheus-style text
// exposition format.
//
// FEEDBACK-FREE CONTRACT: observability is write-only with respect to the
// simulation. No hook ever reads a metric back into simulated state, none
// draws from (or even touches) an Rng, and disabling the whole subsystem —
// at runtime via RFIDSIM_OBS=off / set_enabled(false), or at compile time
// via -DRFIDSIM_OBS=OFF — changes not a single simulated bit.
// bench/perf_baseline holds the event streams to byte-identity across all
// three configurations.
//
// Determinism: metric *values* of simulated quantities (slot counts, round
// durations, quarantine tallies) are pure functions of the run seeds, so a
// metrics dump from a deterministic workload is itself deterministic.
// Wall-clock only enters through trace spans and idle-time gauges, which
// measure the instrument, never the simulation. Histogram bucket edges are
// derived by repeated IEEE-754 multiplication from the spec, identical on
// every conforming platform.
//
// Thread safety: all metric mutations are lock-free atomics; registration
// is mutex-guarded and returns stable references (safe to cache across
// threads for the registry's lifetime).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace rfidsim::obs {

namespace detail {
/// Runtime master switches, initialised once from RFIDSIM_OBS (see
/// env_mode) and adjustable via set_enabled / set_trace_enabled.
std::atomic<bool>& metrics_flag();
std::atomic<bool>& trace_flag();
}  // namespace detail

/// True when metric hooks should record. Cheap enough for per-round call
/// sites: one relaxed atomic load (and constant false when the subsystem
/// is compiled out, letting the optimizer drop the hook entirely).
inline bool hooks_enabled() {
#ifdef RFIDSIM_OBS_DISABLED
  return false;
#else
  return detail::metrics_flag().load(std::memory_order_relaxed);
#endif
}

/// True when TraceSpan should record (requires hooks_enabled too).
inline bool trace_hooks_enabled() {
#ifdef RFIDSIM_OBS_DISABLED
  return false;
#else
  return detail::trace_flag().load(std::memory_order_relaxed) &&
         detail::metrics_flag().load(std::memory_order_relaxed);
#endif
}

bool enabled();
void set_enabled(bool on);
bool trace_enabled();
void set_trace_enabled(bool on);

/// Parsed meaning of one RFIDSIM_OBS value. Exposed for tests.
struct EnvMode {
  bool metrics = true;
  bool trace = false;
  bool profile = false;
};

/// "off"/"0"/"false" disable everything; "trace" additionally enables
/// span recording; "prof" additionally requests the sampling profiler and
/// stage attribution (bench::Session starts them — see obs/prof.hpp);
/// anything else (including unset) means metrics on, tracing off.
EnvMode env_mode(const char* value);

/// True when RFIDSIM_OBS=prof asked for profiling + attribution at
/// startup. Harness-level (bench::Session reads it once); not a hot-path
/// gate.
bool profile_requested();
void set_profile_requested(bool on);

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous or accumulated double-valued signal (queue depths,
/// seconds of downtime/backoff/idle).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  /// Atomic accumulate (CAS loop; gauges are not hot-path metrics).
  void add(double delta);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-scale bucket layout: bucket i covers
/// (first_upper_bound * growth^(i-1), first_upper_bound * growth^i], with
/// an implicit +Inf overflow bucket after the last finite edge. Edges are
/// computed by repeated double multiplication — bit-identical on every
/// IEEE-754 platform (held by tests/obs/metrics_test.cpp).
struct HistogramSpec {
  double first_upper_bound = 1e-6;
  double growth = 4.0;
  std::size_t buckets = 16;  ///< Finite buckets (excluding +Inf).
};

/// Fixed-bucket histogram with atomic per-bucket counts.
class Histogram {
 public:
  explicit Histogram(const HistogramSpec& spec);

  void observe(double x);

  const HistogramSpec& spec() const { return spec_; }
  /// Finite upper bucket edges, ascending (size == spec().buckets).
  const std::vector<double>& edges() const { return edges_; }
  /// Count in finite bucket i, or the +Inf bucket at i == edges().size().
  std::uint64_t bucket_count(std::size_t i) const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Interpolated quantile estimate for q in [0, 1] (throws ConfigError
  /// outside). Inside the bracketing bucket the value is interpolated
  /// *geometrically* between the bucket's edges — the natural convention
  /// for log-scale buckets, where a rank fraction f maps to
  /// lo * (hi/lo)^f (bucket 0's lower edge is first_upper_bound/growth).
  /// Ranks past the last finite edge clamp to it (the +Inf bucket has no
  /// upper bound to interpolate toward); an empty histogram yields 0.
  /// Pinned by golden hexfloat tests (tests/obs/metrics_test.cpp).
  double quantile(double q) const;
  void reset();

 private:
  HistogramSpec spec_;
  std::vector<double> edges_;
  std::vector<std::atomic<std::uint64_t>> counts_;  ///< edges + overflow.
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// One label key/value pair of a labelled metric. Keys are plain
/// identifiers ([a-zA-Z_][a-zA-Z0-9_]*); values are arbitrary strings —
/// the exposition escapes `\`, `"` and newline per the Prometheus text
/// format.
struct Label {
  std::string_view key;
  std::string_view value;
};

/// Named metrics, one namespace per registry. The process-wide instance
/// (obs::registry()) is what the instrumentation hooks feed; tests build
/// their own.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates. Names are dotted lower-case paths
  /// ("gen2.collision_slots"); re-requesting an existing name returns the
  /// same object; requesting it as a different kind throws ConfigError.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `spec` applies on first creation only.
  Histogram& histogram(std::string_view name, const HistogramSpec& spec = {});

  /// Labelled variants: one child metric per distinct label set of a
  /// family ("sys.portal.reader_rounds" + {reader="0"}). Labels are
  /// canonicalised by key order, so lookup order never mints a second
  /// child. All children of a family share one kind — mixing kinds within
  /// a family throws ConfigError, exactly as re-registering a plain name
  /// under a different kind does.
  Counter& counter(std::string_view name, std::initializer_list<Label> labels);
  Gauge& gauge(std::string_view name, std::initializer_list<Label> labels);
  Histogram& histogram(std::string_view name, std::initializer_list<Label> labels,
                       const HistogramSpec& spec = {});

  /// Zeroes every registered metric (registrations survive).
  void reset();

  /// Prometheus-style text exposition, metrics sorted by name (children
  /// of a labelled family sorted by label set under one # TYPE line).
  /// Dotted names are exported as rfidsim_<name with '.' -> '_'>;
  /// histograms get the conventional _bucket{le=...}/_sum/_count series
  /// plus summary-style `# rfidsim_x{quantile="..."}` comment lines for
  /// p50/p95/p99 (comments, so strict parsers skip them).
  void write_exposition(std::ostream& out) const;
  std::string exposition() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// The process-wide registry all built-in instrumentation feeds.
MetricsRegistry& registry();

/// Shorthands for registry() lookups (stable references; call sites cache
/// them in function-local statics).
inline Counter& counter(std::string_view name) { return registry().counter(name); }
inline Gauge& gauge(std::string_view name) { return registry().gauge(name); }
inline Histogram& histogram(std::string_view name, const HistogramSpec& spec = {}) {
  return registry().histogram(name, spec);
}
inline Counter& counter(std::string_view name, std::initializer_list<Label> labels) {
  return registry().counter(name, labels);
}
inline Gauge& gauge(std::string_view name, std::initializer_list<Label> labels) {
  return registry().gauge(name, labels);
}

/// Prometheus label-value escaping (`\` -> `\\`, `"` -> `\"`, newline ->
/// `\n`), as write_exposition applies to every label value. Exposed for
/// the structured log and tests.
std::string escape_label_value(std::string_view value);

}  // namespace rfidsim::obs
