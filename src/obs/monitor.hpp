// rfidsim::obs — online reliability monitor.
//
// The paper's reliability model is predictive: given per-opportunity read
// probabilities P_i, a portal with independent opportunities identifies an
// object with R_C = 1 - prod(1 - P_i). This monitor is the online
// counterpart: it watches a stream of portal passes and estimates both
// sides of that equation as they happen — the *observed* identification
// rate (with a Wilson score interval) and the *predicted* rate composed
// from per-reader windowed read rates — and raises typed alerts when the
// stream drifts from healthy behaviour:
//
//   kSilence         a reader completed zero inventory rounds during a
//                    pass in which the portal was active (dead reader,
//                    cut cable).
//   kReaderDegraded  a reader's round deficit — the fraction of its
//                    healthy-baseline round throughput it failed to
//                    deliver this pass — drifted high, detected by an
//                    EWMA and a CUSUM over per-pass deficits. The
//                    baseline is the reader's own mean rounds per pass
//                    across the warm-up passes, so common-mode faults
//                    (every reader degrading together) are caught, not
//                    just asymmetric ones; until the baseline freezes
//                    the deficit falls back to 1 - rounds / max rounds
//                    against the fastest reader of the pass.
//   kModelDivergence the independence model's prediction left the Wilson
//                    interval of the observed rate by more than a margin
//                    (correlated failures, model violation — the paper's
//                    central caveat).
//
// Contracts:
//   Feedback-free  observe_pass() only reads the observation; nothing
//                  flows back into simulated state. Registry metrics and
//                  structured-log narration are gated on hooks_enabled()
//                  (and disappear under -DRFIDSIM_OBS=OFF), but the
//                  *detection* logic — estimators, detectors, alerts() —
//                  is plain deterministic arithmetic that always runs,
//                  like any other analysis stage.
//   Determinism    feed passes in pass-index order from one thread and
//                  the full monitor state (alerts, estimates) is a pure
//                  function of the observation sequence: byte-identical
//                  across runs, thread counts, and obs on/off.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "obs/metrics.hpp"
#include "obs/structured_log.hpp"

namespace rfidsim::obs {

/// Sliding window over per-pass (successes, trials) pairs with O(1)
/// updates: the newest `window` passes contribute to rate() and wilson().
class SlidingWindowRate {
 public:
  explicit SlidingWindowRate(std::size_t window = 16);

  /// Appends one pass worth of counts, evicting the oldest pass once the
  /// window is full.
  void add(std::uint64_t successes, std::uint64_t trials);

  std::uint64_t successes() const { return success_sum_; }
  std::uint64_t trials() const { return trial_sum_; }
  /// Windowed proportion; 0 when the window holds no trials.
  double rate() const;
  /// Wilson score interval over the windowed counts.
  ProportionInterval wilson(double z = 1.959963984540054) const;
  /// Passes currently inside the window.
  std::size_t size() const { return filled_; }
  void reset();

 private:
  struct PassCounts {
    std::uint64_t successes = 0;
    std::uint64_t trials = 0;
  };
  std::vector<PassCounts> ring_;
  std::size_t next_ = 0;
  std::size_t filled_ = 0;
  std::uint64_t success_sum_ = 0;
  std::uint64_t trial_sum_ = 0;
};

/// Exponentially weighted moving average drift detector:
/// s <- lambda * x + (1 - lambda) * s, alarmed when s > threshold.
/// The first sample seeds s directly.
struct EwmaConfig {
  double lambda = 0.25;
  double threshold = 0.5;
};

class EwmaDetector {
 public:
  explicit EwmaDetector(EwmaConfig config = {});
  /// Folds in one sample and returns the smoothed value.
  double update(double x);
  double value() const { return value_; }
  bool alarmed() const { return seeded_ && value_ > config_.threshold; }
  void reset();

 private:
  EwmaConfig config_;
  double value_ = 0.0;
  bool seeded_ = false;
};

/// One-sided CUSUM: S <- max(0, S + x - reference), alarmed when
/// S > threshold. `reference` is the slack absorbed per pass, so a
/// persistent deficit of d fires after about threshold / (d - reference)
/// passes — that quotient is the detection latency knob.
struct CusumConfig {
  double reference = 0.2;
  double threshold = 1.5;
};

class CusumDetector {
 public:
  explicit CusumDetector(CusumConfig config = {});
  /// Accumulates one sample and returns the new statistic.
  double update(double x);
  double value() const { return value_; }
  bool alarmed() const { return value_ > config_.threshold; }
  void reset();

 private:
  CusumConfig config_;
  double value_ = 0.0;
};

enum class AlertType : int {
  kReaderDegraded = 0,
  kModelDivergence = 1,
  kSilence = 2,
  /// The uplink delivered frames the wire decoder classified as corrupt
  /// (bad CRC / truncated / bad magic / ...), or quarantined a batch after
  /// exhausting NAK retransmissions. Transport-level, reader = -1.
  kWireCorruption = 3,
  /// A delivered batch arrived past the feed's staleness horizon. It still
  /// repairs stored truth — this alert exists precisely so that silent
  /// late-data path is observable. Transport-level, reader = -1.
  kStaleBatch = 4,
  /// The facility's event-time low-watermark (max event time fully merged
  /// into the store) failed to advance for watermark_stall_passes
  /// consecutive passes while the pass window kept moving — a dead uplink
  /// or wedged feed, seen from the freshness side. The alert value is the
  /// stall streak in passes at firing time. Feed-level, reader = -1.
  kWatermarkStalled = 5,
};

/// Number of AlertType values (alert-count arrays index by the enum).
inline constexpr std::size_t kAlertTypeCount = 6;

/// Stable lower-snake name ("reader_degraded", "model_divergence",
/// "silence", "wire_corruption", "stale_batch", "watermark_stalled") used
/// for alert-counter labels and log event names.
const char* alert_type_name(AlertType type);

/// One raised alert. Alerts latch: a condition fires once on its rising
/// edge and re-arms only after it clears, so a ten-pass outage is one
/// alert, not ten.
struct Alert {
  AlertType type;
  std::uint64_t pass = 0;  ///< Pass index (0-based) that raised it.
  int reader = -1;         ///< Reader index; -1 for portal-level alerts.
  double value = 0.0;      ///< Detector statistic at firing time.
  double threshold = 0.0;  ///< Threshold it crossed.
  std::string detector;    ///< "cusum", "ewma", "silence", or "model".
};

/// What one reader saw during one portal pass.
struct ReaderPassObservation {
  std::uint64_t rounds = 0;        ///< Inventory rounds completed.
  std::uint64_t objects_seen = 0;  ///< Objects this reader read >= once.
};

/// One portal pass as fed to the monitor. `objects_total` is the number
/// of objects that transited; `objects_identified` the number read by at
/// least one reader (the portal-level R_C numerator).
struct PassObservation {
  double window_begin_s = 0.0;
  double window_end_s = 0.0;
  std::uint64_t objects_total = 0;
  std::uint64_t objects_identified = 0;
  std::vector<ReaderPassObservation> readers;
};

/// What the transport layer (wire uplink + batch staleness screening) did
/// during one pass, as fed to observe_transport(). All counts are for this
/// pass only, not cumulative.
struct TransportObservation {
  std::uint64_t frames = 0;              ///< Frame transmissions attempted.
  std::uint64_t corrupt_frames = 0;      ///< Receiver-detected bad frames.
  std::uint64_t recovered_batches = 0;   ///< Delivered after >= 1 NAK.
  std::uint64_t quarantined_batches = 0; ///< Dropped: NAK budget exhausted.
  std::uint64_t stale_batches = 0;       ///< Arrived past the staleness horizon.
  double window_end_s = 0.0;
};

/// One pass's freshness reading, as fed to observe_watermark(). The
/// watermark is the facility's event-time low-watermark: the maximum event
/// time the caller has *fully merged* into stored truth (not merely
/// received). Negative = nothing merged yet.
struct WatermarkObservation {
  double watermark_s = -1.0;
  double window_end_s = 0.0;
};

struct MonitorConfig {
  /// Passes per sliding window for read-rate and R_C estimation.
  std::size_t window_passes = 16;
  /// Standard-normal quantile for Wilson intervals (1.96 ~ 95%).
  double wilson_z = 1.959963984540054;
  /// Passes before drift and divergence alerts may fire (estimator
  /// warm-up). Silence alerts are exempt: zero rounds is unambiguous.
  std::size_t warmup_passes = 4;
  /// Extra slack around the observed Wilson interval before a model
  /// divergence fires.
  double divergence_margin = 0.15;
  /// Minimum windowed trials before divergence is evaluated.
  std::uint64_t min_window_objects = 8;
  EwmaConfig ewma;
  CusumConfig cusum;
  /// Consecutive passes the event-time watermark may fail to advance (while
  /// the pass window moves) before kWatermarkStalled fires. The detection
  /// latency is exactly this many passes from the stall's onset.
  std::size_t watermark_stall_passes = 3;
};

/// The streaming monitor. Construct once per portal/run, feed
/// observe_pass() in pass-index order, read alerts()/estimates at any
/// point. Optionally narrates into a StructuredLog (one rate-limit
/// window per pass) and mirrors estimates into the metrics registry —
/// both only when obs hooks are enabled.
class ReliabilityMonitor {
 public:
  explicit ReliabilityMonitor(MonitorConfig config = {});

  /// Directs alert/estimate narration to `log` (nullptr silences it).
  void set_log(StructuredLog* log) { log_ = log; }

  /// Folds in one pass. Readers must keep the same count and order on
  /// every call.
  void observe_pass(const PassObservation& obs);

  /// Folds in one pass's transport tallies (call once per pass, alongside
  /// observe_pass — order between the two does not matter). Raises the
  /// typed kWireCorruption / kStaleBatch alerts on their rising edges,
  /// latched exactly like the reader alerts: a ten-pass corruption storm
  /// is one alert, re-armed only after a clean pass.
  void observe_transport(const TransportObservation& obs);

  /// Folds in one pass's freshness reading (call once per pass, alongside
  /// observe_pass; watermark passes are indexed independently). Raises the
  /// typed kWatermarkStalled alert once the watermark has sat still for
  /// watermark_stall_passes consecutive passes, latched: a ten-pass outage
  /// is one alert, re-armed only after the watermark advances again.
  void observe_watermark(const WatermarkObservation& obs);

  /// All alerts raised so far, in firing order.
  const std::vector<Alert>& alerts() const { return alerts_; }
  /// First alert of `type` for `reader` (-1 = portal-level), or nullptr.
  /// first_alert(type) matches any reader. Detection latency for a fault
  /// on reader r is first_alert(...)->pass minus the fault's onset pass.
  const Alert* first_alert(AlertType type, int reader) const;
  const Alert* first_alert(AlertType type) const;

  std::uint64_t passes() const { return passes_; }
  std::size_t reader_count() const { return readers_.size(); }

  /// Windowed observed portal identification rate and its Wilson CI.
  double observed_rc() const { return portal_.rate(); }
  ProportionInterval observed_rc_interval() const;
  /// Windowed model prediction 1 - prod(1 - P_r) over per-reader rates.
  double predicted_rc() const;

  /// Per-reader windowed read rate / detector statistics (for exposition
  /// and tests).
  double reader_read_rate(std::size_t reader) const;
  double reader_ewma(std::size_t reader) const;
  double reader_cusum(std::size_t reader) const;
  /// The reader's frozen healthy-throughput baseline (mean rounds per
  /// pass over the warm-up passes); 0 until warm-up completes.
  double reader_baseline_rounds(std::size_t reader) const;

  /// Latest watermark reading (negative until one arrives) and its age at
  /// the last observed pass (infinite until anything merged).
  double watermark_s() const { return watermark_s_; }
  double watermark_age_s() const;
  /// Consecutive non-advancing passes so far; latched stall state.
  std::uint64_t watermark_stall_streak() const { return watermark_streak_; }
  bool watermark_stalled() const { return watermark_latched_; }

  const MonitorConfig& config() const { return config_; }

  /// Returns to the just-constructed state (alerts cleared, detectors
  /// and windows reset; the log pointer is kept).
  void reset();

 private:
  struct ReaderState {
    SlidingWindowRate seen;
    EwmaDetector ewma;
    CusumDetector cusum;
    std::uint64_t warmup_rounds = 0;   ///< Rounds summed over warm-up passes.
    double baseline_rounds = 0.0;      ///< Frozen at the end of warm-up.
    bool degraded_latched = false;
    bool silent_latched = false;
  };

  void raise(AlertType type, std::uint64_t pass, int reader, double value,
             double threshold, const char* detector, double sim_time_s);
  void publish_metrics() const;

  MonitorConfig config_;
  StructuredLog* log_ = nullptr;
  std::vector<ReaderState> readers_;
  SlidingWindowRate portal_;
  std::vector<Alert> alerts_;
  std::uint64_t passes_ = 0;
  std::uint64_t transport_passes_ = 0;
  std::uint64_t watermark_passes_ = 0;
  double watermark_s_ = -1.0;
  double watermark_window_end_s_ = 0.0;
  std::uint64_t watermark_streak_ = 0;
  bool divergence_latched_ = false;
  bool wire_corruption_latched_ = false;
  bool stale_latched_ = false;
  bool watermark_latched_ = false;
};

}  // namespace rfidsim::obs
