// rfidsim::obs — structured JSON-lines event log.
//
// Metrics aggregate; traces time; neither says *what happened*. The
// structured log fills that gap: leveled, machine-parseable JSON-lines
// records ("reader 1 went silent at t=2.31s on pass 17") emitted by the
// reliability monitor and any other subsystem that has an event worth a
// line. One record per line, keys in emission order, values JSON-escaped.
//
// Determinism: records carry *simulation* clocks (pass index, sim-time
// seconds) supplied by the caller, so a log from a deterministic workload
// is byte-identical across runs and thread counts as long as records are
// emitted in a deterministic order (the monitor feeds passes in index
// order; see monitor.hpp). Wall-clock timestamps — read from the same
// steady clock TraceSpan uses (trace_now_ns) — are strictly opt-in via
// set_wall_clock(true), because they break byte-identity by design.
//
// Rate limiting is deterministic too: a per-(component, event) budget of
// records per window, with windows advanced by the caller (the monitor
// opens one window per pass). Suppressed records are counted in the
// registry (obs.log.dropped_records) and on the sink itself.
//
// The sink obeys the master obs switches: with RFIDSIM_OBS=off at runtime
// or -DRFIDSIM_OBS=OFF at compile time, log() records nothing (the
// monitor's *detection* logic is independent of this — only its narration
// disappears).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace rfidsim::obs {

/// Severity, ordered. The sink drops records below its minimum level.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Lower-case level name ("debug", "info", "warn", "error").
const char* log_level_name(LogLevel level);

/// One key/value field of a log record. Construct implicitly from the
/// value: {"reader", 3}, {"rate", 0.82}, {"degraded", true},
/// {"detail", "cusum over threshold"}.
struct LogField {
  enum class Kind { kString, kDouble, kInt, kUInt, kBool };

  LogField(std::string_view k, std::string_view v)
      : key(k), kind(Kind::kString), str(v) {}
  LogField(std::string_view k, const char* v)
      : key(k), kind(Kind::kString), str(v) {}
  LogField(std::string_view k, double v) : key(k), kind(Kind::kDouble), num(v) {}
  LogField(std::string_view k, int v)
      : key(k), kind(Kind::kInt), int_num(v) {}
  LogField(std::string_view k, long v)
      : key(k), kind(Kind::kInt), int_num(v) {}
  LogField(std::string_view k, long long v)
      : key(k), kind(Kind::kInt), int_num(v) {}
  LogField(std::string_view k, unsigned v)
      : key(k), kind(Kind::kUInt), uint_num(v) {}
  LogField(std::string_view k, unsigned long v)
      : key(k), kind(Kind::kUInt), uint_num(v) {}
  LogField(std::string_view k, unsigned long long v)
      : key(k), kind(Kind::kUInt), uint_num(v) {}
  LogField(std::string_view k, bool v) : key(k), kind(Kind::kBool), flag(v) {}

  std::string_view key;
  Kind kind;
  std::string_view str{};
  double num = 0.0;
  std::int64_t int_num = 0;
  std::uint64_t uint_num = 0;
  bool flag = false;
};

/// Rate-limit policy of a StructuredLog.
struct LogRateLimit {
  /// Records allowed per (component, event) key per window; 0 disables
  /// the limit entirely.
  std::size_t per_key_per_window = 64;
  /// Hard cap on records per window across all keys; 0 disables.
  std::size_t total_per_window = 4096;
};

/// JSON-lines sink. Not thread-safe by design: the writers (monitor,
/// bench main) feed it from one thread in deterministic order — handing
/// one sink to concurrent writers would scramble line order and break
/// byte-identity anyway. Separate threads take separate sinks.
class StructuredLog {
 public:
  explicit StructuredLog(LogRateLimit limits = {});

  /// Directs output to `out` (nullptr silences the sink; records are
  /// still rate-accounted). The stream must outlive the sink or the next
  /// set_sink call.
  void set_sink(std::ostream* out) { sink_ = out; }
  void set_min_level(LogLevel level) { min_level_ = level; }
  LogLevel min_level() const { return min_level_; }

  /// Opt-in wall-clock field ("wall_ns", from the trace clock). Off by
  /// default: wall time breaks the byte-identity contract.
  void set_wall_clock(bool on) { wall_clock_ = on; }

  /// Opens a new rate-limit window (the monitor calls this once per
  /// pass). Per-key and total budgets refill; nothing is emitted.
  void new_window();

  /// Emits one record: {"lvl":...,"comp":...,"event":...,"t_s":...,
  /// <fields...>}. Returns true when the record reached the sink, false
  /// when it was filtered (level, rate limit, obs disabled, no sink).
  /// `sim_time_s` is the simulation clock of the event (-1 when the event
  /// has no sim-time anchor; the field is then omitted).
  bool log(LogLevel level, std::string_view component, std::string_view event,
           double sim_time_s, std::initializer_list<LogField> fields = {});

  /// Records suppressed by the rate limiter (not by level filtering)
  /// since construction. Mirrored into obs.log.dropped_records on the
  /// process-wide registry when hooks are enabled.
  std::uint64_t dropped() const { return dropped_; }
  /// Records written to the sink since construction.
  std::uint64_t emitted() const { return emitted_; }

  /// Clears rate-limit state and the dropped/emitted tallies.
  void reset();

 private:
  LogRateLimit limits_;
  LogLevel min_level_ = LogLevel::kInfo;
  std::ostream* sink_ = nullptr;
  bool wall_clock_ = false;
  std::map<std::string, std::size_t, std::less<>> window_counts_;
  std::size_t window_total_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t emitted_ = 0;
};

/// Appends `value` JSON-escaped (quotes, backslash, control characters)
/// to `out`, without surrounding quotes. Exposed for tests and for other
/// JSON writers in the repo.
void append_json_escaped(std::string& out, std::string_view value);

/// The process-wide sink the built-in instrumentation narrates into.
/// Silent until someone points it at a stream (bench::Session wires
/// --log-dump to it).
StructuredLog& structured_log();

}  // namespace rfidsim::obs
