// rfidsim::obs::prof — deterministic stage attribution.
//
// Named phase timers answering "where does a run's wall-clock go": RAII
// ScopedPhase markers wrap the simulator's coarse stages (path evaluation,
// portal simulation, Gen 2 inventory, event-log append, store routing,
// store merge) and accumulate *self time* per phase — time inside a child
// phase is charged to the child, never double-counted in the parent. The
// per-run attribution report turns the totals into per-stage shares, which
// is what lets the ROADMAP's "thread scaling is portal-simulation-bound"
// claim be quantified instead of asserted.
//
// Determinism contract (the attribution determinism test pins this):
//   - Phase *names* and *enter counts* are pure functions of the workload —
//     markers sit on the orchestrating thread of each stage, so a run at 1
//     thread and a run at 8 threads enter every phase the same number of
//     times.
//   - *Seconds* are wall-clock and therefore machine-dependent; reports
//     separate the two so tests can compare the deterministic fields alone.
//
// Feedback-free, like every obs layer: markers never touch simulated
// state, are gated on one relaxed atomic load when disabled (the default),
// and compile out entirely under -DRFIDSIM_OBS=OFF. Attribution is opt-in
// (RFIDSIM_OBS=prof, --attribution-dump, or set_attribution_enabled) so
// default runs pay only the disabled-hook load, held under the <1%
// microbench budget.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"

namespace rfidsim::obs::prof {

/// The fixed stage vocabulary. A closed enum (not free-form strings) keeps
/// the report order stable and the hot-path marker a couple of array
/// indexes.
enum class Phase : std::uint8_t {
  kPathEval = 0,       ///< PathEvaluator::evaluate_all per antenna round.
  kPortalSim = 1,      ///< PortalSimulator::run outside the named children.
  kGen2Inventory = 2,  ///< InventoryEngine::run_round per reader round.
  kEventLogAppend = 3, ///< Singulation results appended to the event log.
  kStoreRoute = 4,     ///< TrackingStore ingest phase 1 (shard routing).
  kStoreMerge = 5,     ///< TrackingStore ingest phase 2 (shard merge).
  kGen2Fusion = 6,     ///< SessionFusion estimate over per-session read sets.
};
inline constexpr std::size_t kPhaseCount = 7;

/// Stable lower-snake name ("path_eval", "portal_sim", ...).
const char* phase_name(Phase phase);

namespace detail {
std::atomic<bool>& attribution_flag();
}  // namespace detail

/// True when ScopedPhase should record: attribution was opted into AND obs
/// hooks are on. One relaxed load each; constant false when compiled out.
inline bool attribution_hooks_enabled() {
#ifdef RFIDSIM_OBS_DISABLED
  return false;
#else
  return detail::attribution_flag().load(std::memory_order_relaxed) &&
         hooks_enabled();
#endif
}

bool attribution_enabled();
void set_attribution_enabled(bool on);

/// RAII phase marker. Maintains a per-thread phase stack; on entry the
/// elapsed wall time since the last stack transition is charged to the
/// enclosing phase (self-time accounting), on exit to this phase.
class ScopedPhase {
 public:
  explicit ScopedPhase(Phase phase);
  ~ScopedPhase();

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  Phase phase_;
  bool active_ = false;
};

/// Accumulated totals of one phase since the last reset.
struct PhaseTotals {
  std::uint64_t calls = 0;   ///< ScopedPhase entries (deterministic).
  double self_seconds = 0.0; ///< Exclusive wall time (machine-dependent).
};

PhaseTotals phase_totals(Phase phase);

/// Zeroes every phase's totals.
void reset_attribution();

/// Publishes the totals as labelled registry metrics:
/// obs.attribution.phase_calls{phase="..."} (counter-valued gauge) and
/// obs.attribution.self_seconds{phase="..."}.
void publish_attribution_metrics();

/// Human-readable report: one row per phase (calls, self seconds, share of
/// the phase-covered total) plus the derived stage groups the ROADMAP
/// argues about — portal simulation (portal_sim + gen2_inventory +
/// event_log_append + gen2_fusion), path evaluation, and store merge
/// (store_route + store_merge).
void write_attribution_report(std::ostream& out);

/// The same report as one JSON object ('\n'-terminated), deterministic key
/// order; seconds/shares are wall-clock fields, calls are deterministic.
void write_attribution_json(std::ostream& out);

/// Writes the JSON report to `path` atomically (tmp + rename). Returns
/// false if the file could not be written.
bool dump_attribution(const std::string& path);

}  // namespace rfidsim::obs::prof
