#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <string>

#include "common/error.hpp"

namespace rfidsim::obs {

namespace detail {

namespace {
EnvMode initial_mode() { return env_mode(std::getenv("RFIDSIM_OBS")); }
}  // namespace

std::atomic<bool>& metrics_flag() {
  static std::atomic<bool> flag{initial_mode().metrics};
  return flag;
}

std::atomic<bool>& trace_flag() {
  static std::atomic<bool> flag{initial_mode().trace};
  return flag;
}

}  // namespace detail

EnvMode env_mode(const char* value) {
  EnvMode mode;
  if (value == nullptr) return mode;
  const std::string v(value);
  if (v == "off" || v == "0" || v == "false" || v == "OFF") {
    mode.metrics = false;
    mode.trace = false;
  } else if (v == "trace") {
    mode.trace = true;
  }
  return mode;
}

bool enabled() { return detail::metrics_flag().load(std::memory_order_relaxed); }
void set_enabled(bool on) {
  detail::metrics_flag().store(on, std::memory_order_relaxed);
}
bool trace_enabled() { return detail::trace_flag().load(std::memory_order_relaxed); }
void set_trace_enabled(bool on) {
  detail::trace_flag().store(on, std::memory_order_relaxed);
}

void Gauge::add(double delta) {
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(const HistogramSpec& spec)
    : spec_(spec), counts_(spec.buckets + 1) {
  require(spec.first_upper_bound > 0.0,
          "Histogram: first bucket bound must be positive");
  require(spec.growth > 1.0, "Histogram: bucket growth factor must exceed 1");
  require(spec.buckets > 0, "Histogram: need at least one finite bucket");
  edges_.reserve(spec.buckets);
  double edge = spec.first_upper_bound;
  for (std::size_t i = 0; i < spec.buckets; ++i) {
    edges_.push_back(edge);
    edge *= spec.growth;
  }
}

void Histogram::observe(double x) {
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), x);
  const auto bucket = static_cast<std::size_t>(it - edges_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + x, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  require(i < counts_.size(), "Histogram: bucket index out of range");
  return counts_[i].load(std::memory_order_relaxed);
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

namespace {

enum class Kind { Counter, Gauge, Histogram };

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::Counter: return "counter";
    case Kind::Gauge: return "gauge";
    case Kind::Histogram: return "histogram";
  }
  return "?";
}

/// Exposition name: rfidsim_ prefix, non-alphanumerics to '_'.
std::string exposition_name(const std::string& name) {
  std::string out = "rfidsim_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// Shortest-round-trip-ish double formatting for exposition values and
/// bucket labels (%.9g keeps the log-scale edges unambiguous and stable).
std::string num_str(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

struct Metric {
  Kind kind;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

}  // namespace

struct MetricsRegistry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, Metric, std::less<>> metrics;  ///< Sorted for export.

  /// Finds or creates (payload included) under the registry lock, so
  /// concurrent first lookups of one name are safe.
  Metric& find_or_create(std::string_view name, Kind kind,
                         const HistogramSpec* spec = nullptr) {
    std::lock_guard lock(mutex);
    const auto it = metrics.find(name);
    if (it != metrics.end()) {
      require(it->second.kind == kind,
              "MetricsRegistry: '" + std::string(name) + "' already registered as " +
                  kind_name(it->second.kind) + ", requested as " + kind_name(kind));
      return it->second;
    }
    Metric m{.kind = kind, .counter = nullptr, .gauge = nullptr, .histogram = nullptr};
    switch (kind) {
      case Kind::Counter: m.counter = std::make_unique<Counter>(); break;
      case Kind::Gauge: m.gauge = std::make_unique<Gauge>(); break;
      case Kind::Histogram:
        m.histogram = std::make_unique<Histogram>(spec ? *spec : HistogramSpec{});
        break;
    }
    return metrics.emplace(std::string(name), std::move(m)).first->second;
  }
};

MetricsRegistry::MetricsRegistry() : impl_(std::make_unique<Impl>()) {}
MetricsRegistry::~MetricsRegistry() = default;

Counter& MetricsRegistry::counter(std::string_view name) {
  return *impl_->find_or_create(name, Kind::Counter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return *impl_->find_or_create(name, Kind::Gauge).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      const HistogramSpec& spec) {
  return *impl_->find_or_create(name, Kind::Histogram, &spec).histogram;
}

void MetricsRegistry::reset() {
  Impl& im = *impl_;
  std::lock_guard lock(im.mutex);
  for (auto& [name, m] : im.metrics) {
    if (m.counter) m.counter->reset();
    if (m.gauge) m.gauge->reset();
    if (m.histogram) m.histogram->reset();
  }
}

void MetricsRegistry::write_exposition(std::ostream& out) const {
  Impl& im = *impl_;
  std::lock_guard lock(im.mutex);
  for (const auto& [name, m] : im.metrics) {
    const std::string ename = exposition_name(name);
    out << "# TYPE " << ename << ' ' << kind_name(m.kind) << '\n';
    switch (m.kind) {
      case Kind::Counter:
        out << ename << ' ' << m.counter->value() << '\n';
        break;
      case Kind::Gauge:
        out << ename << ' ' << num_str(m.gauge->value()) << '\n';
        break;
      case Kind::Histogram: {
        const Histogram& h = *m.histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.edges().size(); ++i) {
          cumulative += h.bucket_count(i);
          out << ename << "_bucket{le=\"" << num_str(h.edges()[i]) << "\"} "
              << cumulative << '\n';
        }
        cumulative += h.bucket_count(h.edges().size());
        out << ename << "_bucket{le=\"+Inf\"} " << cumulative << '\n';
        out << ename << "_sum " << num_str(h.sum()) << '\n';
        out << ename << "_count " << h.count() << '\n';
        break;
      }
    }
  }
}

std::string MetricsRegistry::exposition() const {
  std::ostringstream out;
  write_exposition(out);
  return out.str();
}

MetricsRegistry& registry() {
  static MetricsRegistry instance;
  return instance;
}

}  // namespace rfidsim::obs
