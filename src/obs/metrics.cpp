#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>

#include "common/error.hpp"

namespace rfidsim::obs {

namespace detail {

namespace {
EnvMode initial_mode() { return env_mode(std::getenv("RFIDSIM_OBS")); }
}  // namespace

std::atomic<bool>& metrics_flag() {
  static std::atomic<bool> flag{initial_mode().metrics};
  return flag;
}

std::atomic<bool>& trace_flag() {
  static std::atomic<bool> flag{initial_mode().trace};
  return flag;
}

std::atomic<bool>& profile_flag() {
  static std::atomic<bool> flag{initial_mode().profile};
  return flag;
}

}  // namespace detail

EnvMode env_mode(const char* value) {
  EnvMode mode;
  if (value == nullptr) return mode;
  const std::string v(value);
  if (v == "off" || v == "0" || v == "false" || v == "OFF") {
    mode.metrics = false;
    mode.trace = false;
  } else if (v == "trace") {
    mode.trace = true;
  } else if (v == "prof") {
    mode.profile = true;
  }
  return mode;
}

bool profile_requested() {
  return detail::profile_flag().load(std::memory_order_relaxed);
}
void set_profile_requested(bool on) {
  detail::profile_flag().store(on, std::memory_order_relaxed);
}

bool enabled() { return detail::metrics_flag().load(std::memory_order_relaxed); }
void set_enabled(bool on) {
  detail::metrics_flag().store(on, std::memory_order_relaxed);
}
bool trace_enabled() { return detail::trace_flag().load(std::memory_order_relaxed); }
void set_trace_enabled(bool on) {
  detail::trace_flag().store(on, std::memory_order_relaxed);
}

void Gauge::add(double delta) {
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(const HistogramSpec& spec)
    : spec_(spec), counts_(spec.buckets + 1) {
  require(spec.first_upper_bound > 0.0,
          "Histogram: first bucket bound must be positive");
  require(spec.growth > 1.0, "Histogram: bucket growth factor must exceed 1");
  require(spec.buckets > 0, "Histogram: need at least one finite bucket");
  edges_.reserve(spec.buckets);
  double edge = spec.first_upper_bound;
  for (std::size_t i = 0; i < spec.buckets; ++i) {
    edges_.push_back(edge);
    edge *= spec.growth;
  }
}

void Histogram::observe(double x) {
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), x);
  const auto bucket = static_cast<std::size_t>(it - edges_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + x, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  require(i < counts_.size(), "Histogram: bucket index out of range");
  return counts_[i].load(std::memory_order_relaxed);
}

double Histogram::quantile(double q) const {
  require(q >= 0.0 && q <= 1.0, "Histogram: quantile must be in [0, 1]");
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  // Continuous rank: the q-quantile sits at rank q*n of the cumulative
  // bucket counts; inside the bracketing bucket we interpolate the rank
  // fraction geometrically between the bucket's log-scale edges.
  const double target = q * static_cast<double>(n);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const double in_bucket =
        static_cast<double>(counts_[i].load(std::memory_order_relaxed));
    if (in_bucket > 0.0 && cumulative + in_bucket >= target) {
      const double hi = edges_[i];
      const double lo = i == 0 ? edges_[0] / spec_.growth : edges_[i - 1];
      const double frac = std::max(target - cumulative, 0.0) / in_bucket;
      return lo * std::pow(hi / lo, frac);
    }
    cumulative += in_bucket;
  }
  // The rank falls in the +Inf bucket: no upper edge to interpolate
  // toward, so clamp to the last finite edge.
  return edges_.back();
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

namespace {

enum class Kind { Counter, Gauge, Histogram };

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::Counter: return "counter";
    case Kind::Gauge: return "gauge";
    case Kind::Histogram: return "histogram";
  }
  return "?";
}

/// Exposition name: rfidsim_ prefix, non-alphanumerics to '_'.
std::string exposition_name(const std::string& name) {
  std::string out = "rfidsim_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// Shortest-round-trip-ish double formatting for exposition values and
/// bucket labels (%.9g keeps the log-scale edges unambiguous and stable).
std::string num_str(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

struct Metric {
  Kind kind;
  std::string labels;  ///< Canonical escaped `k="v",...` (empty when plain).
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

/// Separator between a family name and its canonical label string in the
/// registry's map keys. 0x1f sorts below every character legal in metric
/// names, so a family's children stay contiguous right after the plain
/// name in the sorted map (the exposition leans on that for # TYPE
/// grouping).
constexpr char kLabelSep = '\x1f';

/// Canonical label rendering: keys sorted, values escaped, `k="v",...`.
/// Canonicalisation makes the handle independent of the order the caller
/// listed the labels in.
std::string render_labels(std::initializer_list<Label> labels) {
  std::vector<std::pair<std::string_view, std::string_view>> sorted;
  sorted.reserve(labels.size());
  for (const Label& l : labels) sorted.emplace_back(l.key, l.value);
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    require(!sorted[i].first.empty(), "MetricsRegistry: label key must not be empty");
    require(i == 0 || sorted[i].first != sorted[i - 1].first,
            "MetricsRegistry: duplicate label key '" + std::string(sorted[i].first) +
                "'");
    if (i > 0) out.push_back(',');
    out.append(sorted[i].first);
    out.append("=\"");
    out.append(escape_label_value(sorted[i].second));
    out.push_back('"');
  }
  return out;
}

}  // namespace

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

struct MetricsRegistry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, Metric, std::less<>> metrics;  ///< Sorted for export.

  /// Finds or creates (payload included) under the registry lock, so
  /// concurrent first lookups of one name are safe. `labels` is the
  /// canonical rendering (empty for plain metrics); all children of one
  /// family must agree on kind.
  Metric& find_or_create(std::string_view name, std::string labels, Kind kind,
                         const HistogramSpec* spec = nullptr) {
    std::string key(name);
    if (!labels.empty()) {
      key.push_back(kLabelSep);
      key.append(labels);
    }
    std::lock_guard lock(mutex);
    const auto it = metrics.find(key);
    if (it != metrics.end()) {
      require(it->second.kind == kind,
              "MetricsRegistry: '" + std::string(name) + "' already registered as " +
                  kind_name(it->second.kind) + ", requested as " + kind_name(kind));
      return it->second;
    }
    // Kind consistency across the whole family: the plain name and every
    // labelled child sit contiguously at lower_bound(name).
    for (auto sibling = metrics.lower_bound(name); sibling != metrics.end();
         ++sibling) {
      const std::string& sk = sibling->first;
      const bool same_family =
          sk == name || (sk.size() > name.size() && sk.compare(0, name.size(), name) == 0 &&
                         sk[name.size()] == kLabelSep);
      if (!same_family) break;
      require(sibling->second.kind == kind,
              "MetricsRegistry: '" + std::string(name) + "' already registered as " +
                  kind_name(sibling->second.kind) + ", requested as " + kind_name(kind));
    }
    Metric m{.kind = kind,
             .labels = std::move(labels),
             .counter = nullptr,
             .gauge = nullptr,
             .histogram = nullptr};
    switch (kind) {
      case Kind::Counter: m.counter = std::make_unique<Counter>(); break;
      case Kind::Gauge: m.gauge = std::make_unique<Gauge>(); break;
      case Kind::Histogram:
        m.histogram = std::make_unique<Histogram>(spec ? *spec : HistogramSpec{});
        break;
    }
    return metrics.emplace(std::move(key), std::move(m)).first->second;
  }
};

MetricsRegistry::MetricsRegistry() : impl_(std::make_unique<Impl>()) {}
MetricsRegistry::~MetricsRegistry() = default;

Counter& MetricsRegistry::counter(std::string_view name) {
  return *impl_->find_or_create(name, {}, Kind::Counter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return *impl_->find_or_create(name, {}, Kind::Gauge).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      const HistogramSpec& spec) {
  return *impl_->find_or_create(name, {}, Kind::Histogram, &spec).histogram;
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::initializer_list<Label> labels) {
  return *impl_->find_or_create(name, render_labels(labels), Kind::Counter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name,
                              std::initializer_list<Label> labels) {
  return *impl_->find_or_create(name, render_labels(labels), Kind::Gauge).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::initializer_list<Label> labels,
                                      const HistogramSpec& spec) {
  return *impl_->find_or_create(name, render_labels(labels), Kind::Histogram, &spec)
              .histogram;
}

void MetricsRegistry::reset() {
  Impl& im = *impl_;
  std::lock_guard lock(im.mutex);
  for (auto& [name, m] : im.metrics) {
    if (m.counter) m.counter->reset();
    if (m.gauge) m.gauge->reset();
    if (m.histogram) m.histogram->reset();
  }
}

void MetricsRegistry::write_exposition(std::ostream& out) const {
  Impl& im = *impl_;
  std::lock_guard lock(im.mutex);
  std::string last_family;
  bool first = true;
  for (const auto& [key, m] : im.metrics) {
    // Children of one labelled family share the key prefix before the
    // separator; the map's sort keeps them contiguous, so one # TYPE line
    // covers the family.
    const std::string family = key.substr(0, key.find(kLabelSep));
    const std::string ename = exposition_name(family);
    if (first || family != last_family) {
      out << "# TYPE " << ename << ' ' << kind_name(m.kind) << '\n';
      last_family = family;
      first = false;
    }
    // `{labels}` suffix for plain sample lines; histograms splice their
    // own le/quantile label after these.
    const std::string plain_labels = m.labels.empty() ? "" : "{" + m.labels + "}";
    switch (m.kind) {
      case Kind::Counter:
        out << ename << plain_labels << ' ' << m.counter->value() << '\n';
        break;
      case Kind::Gauge:
        out << ename << plain_labels << ' ' << num_str(m.gauge->value()) << '\n';
        break;
      case Kind::Histogram: {
        const Histogram& h = *m.histogram;
        const std::string lead = m.labels.empty() ? "{" : "{" + m.labels + ",";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.edges().size(); ++i) {
          cumulative += h.bucket_count(i);
          out << ename << "_bucket" << lead << "le=\"" << num_str(h.edges()[i])
              << "\"} " << cumulative << '\n';
        }
        cumulative += h.bucket_count(h.edges().size());
        out << ename << "_bucket" << lead << "le=\"+Inf\"} " << cumulative << '\n';
        out << ename << "_sum" << plain_labels << ' ' << num_str(h.sum()) << '\n';
        out << ename << "_count" << plain_labels << ' ' << h.count() << '\n';
        // Summary-style quantile estimates from the log-bucket
        // interpolation, emitted as comments so strict text-format
        // parsers (which reject `quantile` on a histogram) skip them.
        for (double q : {0.5, 0.95, 0.99}) {
          out << "# " << ename << lead << "quantile=\"" << num_str(q) << "\"} "
              << num_str(h.quantile(q)) << '\n';
        }
        break;
      }
    }
  }
}

std::string MetricsRegistry::exposition() const {
  std::ostringstream out;
  write_exposition(out);
  return out.str();
}

MetricsRegistry& registry() {
  static MetricsRegistry instance;
  return instance;
}

}  // namespace rfidsim::obs
