#include "obs/monitor.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "common/error.hpp"

namespace rfidsim::obs {

SlidingWindowRate::SlidingWindowRate(std::size_t window) {
  require(window > 0, "SlidingWindowRate: window must be positive");
  ring_.resize(window);
}

void SlidingWindowRate::add(std::uint64_t successes, std::uint64_t trials) {
  require(successes <= trials, "SlidingWindowRate: successes exceed trials");
  PassCounts& slot = ring_[next_];
  if (filled_ == ring_.size()) {
    success_sum_ -= slot.successes;
    trial_sum_ -= slot.trials;
  } else {
    ++filled_;
  }
  slot = PassCounts{successes, trials};
  next_ = (next_ + 1) % ring_.size();
  success_sum_ += successes;
  trial_sum_ += trials;
}

double SlidingWindowRate::rate() const {
  if (trial_sum_ == 0) return 0.0;
  return static_cast<double>(success_sum_) / static_cast<double>(trial_sum_);
}

ProportionInterval SlidingWindowRate::wilson(double z) const {
  return wilson_interval(success_sum_, trial_sum_, z);
}

void SlidingWindowRate::reset() {
  std::fill(ring_.begin(), ring_.end(), PassCounts{});
  next_ = 0;
  filled_ = 0;
  success_sum_ = 0;
  trial_sum_ = 0;
}

EwmaDetector::EwmaDetector(EwmaConfig config) : config_(config) {
  require(config_.lambda > 0.0 && config_.lambda <= 1.0,
          "EwmaDetector: lambda must be in (0, 1]");
}

double EwmaDetector::update(double x) {
  if (!seeded_) {
    value_ = x;
    seeded_ = true;
  } else {
    value_ = config_.lambda * x + (1.0 - config_.lambda) * value_;
  }
  return value_;
}

void EwmaDetector::reset() {
  value_ = 0.0;
  seeded_ = false;
}

CusumDetector::CusumDetector(CusumConfig config) : config_(config) {
  require(config_.threshold > 0.0, "CusumDetector: threshold must be positive");
}

double CusumDetector::update(double x) {
  value_ = std::max(0.0, value_ + x - config_.reference);
  return value_;
}

void CusumDetector::reset() { value_ = 0.0; }

const char* alert_type_name(AlertType type) {
  switch (type) {
    case AlertType::kReaderDegraded: return "reader_degraded";
    case AlertType::kModelDivergence: return "model_divergence";
    case AlertType::kSilence: return "silence";
    case AlertType::kWireCorruption: return "wire_corruption";
    case AlertType::kStaleBatch: return "stale_batch";
    case AlertType::kWatermarkStalled: return "watermark_stalled";
  }
  return "?";
}

ReliabilityMonitor::ReliabilityMonitor(MonitorConfig config)
    : config_(config), portal_(config.window_passes) {
  require(config_.window_passes > 0, "ReliabilityMonitor: window_passes must be positive");
}

void ReliabilityMonitor::raise(AlertType type, std::uint64_t pass, int reader,
                               double value, double threshold,
                               const char* detector, double sim_time_s) {
  alerts_.push_back(Alert{.type = type,
                          .pass = pass,
                          .reader = reader,
                          .value = value,
                          .threshold = threshold,
                          .detector = detector});
  // Narration and counters are observability, not detection: they obey
  // the master obs switch (the structured log checks it internally).
  if (hooks_enabled()) {
    obs::counter("obs.monitor.alerts", {{"type", alert_type_name(type)}}).add(1);
  }
  if (log_ != nullptr) {
    log_->log(LogLevel::kWarn, "obs.monitor", alert_type_name(type), sim_time_s,
              {{"pass", pass},
               {"reader", reader},
               {"value", value},
               {"threshold", threshold},
               {"detector", detector}});
  }
}

void ReliabilityMonitor::observe_pass(const PassObservation& obs) {
  require(obs.objects_identified <= obs.objects_total,
          "ReliabilityMonitor: identified objects exceed total");
  if (passes_ == 0) {
    readers_.clear();
    readers_.reserve(obs.readers.size());
    for (std::size_t r = 0; r < obs.readers.size(); ++r) {
      readers_.push_back(ReaderState{.seen = SlidingWindowRate(config_.window_passes),
                                     .ewma = EwmaDetector(config_.ewma),
                                     .cusum = CusumDetector(config_.cusum)});
    }
  }
  require(obs.readers.size() == readers_.size(),
          "ReliabilityMonitor: reader count changed mid-stream");

  const std::uint64_t pass = passes_++;
  if (log_ != nullptr) log_->new_window();

  portal_.add(obs.objects_identified, obs.objects_total);

  std::uint64_t max_rounds = 0;
  for (const ReaderPassObservation& r : obs.readers) {
    max_rounds = std::max(max_rounds, r.rounds);
  }

  const bool warmed = pass + 1 > config_.warmup_passes;
  for (std::size_t r = 0; r < readers_.size(); ++r) {
    const ReaderPassObservation& in = obs.readers[r];
    ReaderState& state = readers_[r];
    state.seen.add(in.objects_seen, obs.objects_total);

    // Healthy-throughput baseline: each reader's mean rounds per pass over
    // the warm-up passes, frozen when warm-up ends. Measuring the deficit
    // against the reader's *own* past — not the current fastest reader —
    // keeps common-mode degradation (all readers crashing together)
    // visible; the relative form would read it as "everyone is the
    // fastest" and see nothing.
    if (!warmed) state.warmup_rounds += in.rounds;
    if (pass + 1 == config_.warmup_passes) {
      state.baseline_rounds = static_cast<double>(state.warmup_rounds) /
                              static_cast<double>(config_.warmup_passes);
    }

    // Round deficit: the fraction of the baseline throughput the reader
    // failed to deliver this pass (clamped at 0 — running faster than the
    // baseline is not a fault). Falls back to the fastest-reader-relative
    // form until the baseline exists.
    double deficit;
    if (state.baseline_rounds > 0.0) {
      deficit = std::max(
          0.0, 1.0 - static_cast<double>(in.rounds) / state.baseline_rounds);
    } else {
      deficit = max_rounds == 0 ? 0.0
                                : 1.0 - static_cast<double>(in.rounds) /
                                            static_cast<double>(max_rounds);
    }
    const double ewma = state.ewma.update(deficit);
    const double cusum = state.cusum.update(deficit);

    // Silence is unambiguous and exempt from warm-up: the portal ran
    // rounds (or this reader used to), this reader ran none.
    if (in.rounds == 0 && (max_rounds > 0 || state.baseline_rounds > 0.0)) {
      if (!state.silent_latched) {
        state.silent_latched = true;
        raise(AlertType::kSilence, pass, static_cast<int>(r), 0.0, 0.0, "silence",
              obs.window_end_s);
      }
    } else {
      state.silent_latched = false;
    }

    const bool drifted = state.cusum.alarmed() || state.ewma.alarmed();
    if (warmed && drifted) {
      if (!state.degraded_latched) {
        state.degraded_latched = true;
        if (state.cusum.alarmed()) {
          raise(AlertType::kReaderDegraded, pass, static_cast<int>(r), cusum,
                config_.cusum.threshold, "cusum", obs.window_end_s);
        } else {
          raise(AlertType::kReaderDegraded, pass, static_cast<int>(r), ewma,
                config_.ewma.threshold, "ewma", obs.window_end_s);
        }
      }
    } else if (!drifted) {
      state.degraded_latched = false;
    }
  }

  // Model check: the independence prediction must stay inside the
  // observed Wilson interval (plus margin). Persistent escape means
  // correlated failure modes the model cannot represent.
  if (warmed && portal_.trials() >= config_.min_window_objects) {
    const double predicted = predicted_rc();
    const ProportionInterval ci = portal_.wilson(config_.wilson_z);
    const double lo = ci.lower - config_.divergence_margin;
    const double hi = ci.upper + config_.divergence_margin;
    const bool diverged = predicted < lo || predicted > hi;
    if (diverged) {
      if (!divergence_latched_) {
        divergence_latched_ = true;
        raise(AlertType::kModelDivergence, pass, -1, predicted,
              predicted > hi ? hi : lo, "model", obs.window_end_s);
      }
    } else {
      divergence_latched_ = false;
    }
  }

  if (hooks_enabled()) publish_metrics();
}

void ReliabilityMonitor::publish_metrics() const {
  obs::gauge("obs.monitor.observed_rc").set(observed_rc());
  obs::gauge("obs.monitor.predicted_rc").set(predicted_rc());
  char reader_label[16];
  for (std::size_t r = 0; r < readers_.size(); ++r) {
    std::snprintf(reader_label, sizeof reader_label, "r%zu", r);
    obs::gauge("obs.monitor.reader_read_rate", {{"reader", reader_label}})
        .set(readers_[r].seen.rate());
    obs::gauge("obs.monitor.reader_cusum", {{"reader", reader_label}})
        .set(readers_[r].cusum.value());
  }
}

const Alert* ReliabilityMonitor::first_alert(AlertType type, int reader) const {
  for (const Alert& a : alerts_) {
    if (a.type == type && a.reader == reader) return &a;
  }
  return nullptr;
}

const Alert* ReliabilityMonitor::first_alert(AlertType type) const {
  for (const Alert& a : alerts_) {
    if (a.type == type) return &a;
  }
  return nullptr;
}

ProportionInterval ReliabilityMonitor::observed_rc_interval() const {
  return portal_.wilson(config_.wilson_z);
}

double ReliabilityMonitor::predicted_rc() const {
  double miss_all = 1.0;
  for (const ReaderState& r : readers_) miss_all *= 1.0 - r.seen.rate();
  return 1.0 - miss_all;
}

double ReliabilityMonitor::reader_read_rate(std::size_t reader) const {
  require(reader < readers_.size(), "ReliabilityMonitor: reader index out of range");
  return readers_[reader].seen.rate();
}

double ReliabilityMonitor::reader_ewma(std::size_t reader) const {
  require(reader < readers_.size(), "ReliabilityMonitor: reader index out of range");
  return readers_[reader].ewma.value();
}

double ReliabilityMonitor::reader_cusum(std::size_t reader) const {
  require(reader < readers_.size(), "ReliabilityMonitor: reader index out of range");
  return readers_[reader].cusum.value();
}

double ReliabilityMonitor::reader_baseline_rounds(std::size_t reader) const {
  require(reader < readers_.size(), "ReliabilityMonitor: reader index out of range");
  return readers_[reader].baseline_rounds;
}

void ReliabilityMonitor::observe_transport(const TransportObservation& obs) {
  // Transport passes are indexed independently of portal passes: callers
  // may start the wire hop before (or without) ever feeding observe_pass.
  const std::uint64_t pass = transport_passes_++;

  const bool corrupted = obs.corrupt_frames > 0 || obs.quarantined_batches > 0;
  if (corrupted) {
    if (!wire_corruption_latched_) {
      wire_corruption_latched_ = true;
      const double fraction =
          obs.frames == 0 ? 1.0
                          : static_cast<double>(obs.corrupt_frames) /
                                static_cast<double>(obs.frames);
      raise(AlertType::kWireCorruption, pass, -1, fraction, 0.0, "wire",
            obs.window_end_s);
    }
  } else {
    wire_corruption_latched_ = false;
  }

  if (obs.stale_batches > 0) {
    if (!stale_latched_) {
      stale_latched_ = true;
      raise(AlertType::kStaleBatch, pass, -1,
            static_cast<double>(obs.stale_batches), 0.0, "stale",
            obs.window_end_s);
    }
  } else {
    stale_latched_ = false;
  }

  if (hooks_enabled()) {
    obs::counter("obs.monitor.wire_frames").add(obs.frames);
    obs::counter("obs.monitor.wire_corrupt_frames").add(obs.corrupt_frames);
    obs::counter("obs.monitor.wire_recovered_batches").add(obs.recovered_batches);
    obs::counter("obs.monitor.wire_quarantined_batches")
        .add(obs.quarantined_batches);
    obs::counter("obs.monitor.stale_batches").add(obs.stale_batches);
  }
}

void ReliabilityMonitor::observe_watermark(const WatermarkObservation& obs) {
  // Watermark passes are indexed independently, like transport passes:
  // callers may track freshness without ever feeding observe_pass.
  const std::uint64_t pass = watermark_passes_++;
  const bool advanced = obs.watermark_s > watermark_s_;
  const bool window_moved = pass == 0 || obs.window_end_s > watermark_window_end_s_;
  if (advanced) watermark_s_ = obs.watermark_s;
  watermark_window_end_s_ = std::max(watermark_window_end_s_, obs.window_end_s);

  if (advanced) {
    watermark_streak_ = 0;
    watermark_latched_ = false;
  } else if (window_moved) {
    // The window moved on but no newer events reached stored truth: one
    // more stalled pass. A pass where the window itself did not move says
    // nothing about freshness and leaves the streak alone.
    ++watermark_streak_;
    if (!watermark_latched_ && watermark_streak_ >= config_.watermark_stall_passes) {
      watermark_latched_ = true;
      raise(AlertType::kWatermarkStalled, pass, -1,
            static_cast<double>(watermark_streak_),
            static_cast<double>(config_.watermark_stall_passes), "watermark",
            obs.window_end_s);
    }
  }

  if (hooks_enabled()) {
    obs::gauge("obs.monitor.watermark_seconds").set(watermark_s_);
    obs::gauge("obs.monitor.watermark_stall_streak")
        .set(static_cast<double>(watermark_streak_));
  }
}

double ReliabilityMonitor::watermark_age_s() const {
  if (watermark_s_ < 0.0) return std::numeric_limits<double>::infinity();
  return watermark_window_end_s_ - watermark_s_;
}

void ReliabilityMonitor::reset() {
  readers_.clear();
  portal_.reset();
  alerts_.clear();
  passes_ = 0;
  transport_passes_ = 0;
  watermark_passes_ = 0;
  watermark_s_ = -1.0;
  watermark_window_end_s_ = 0.0;
  watermark_streak_ = 0;
  divergence_latched_ = false;
  wire_corruption_latched_ = false;
  stale_latched_ = false;
  watermark_latched_ = false;
}

}  // namespace rfidsim::obs
