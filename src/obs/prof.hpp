// rfidsim::obs::prof — Linux signal-driven sampling profiler.
//
// Per-thread CPU-time sampling: every registered thread gets a POSIX timer
// (timer_create on CLOCK_THREAD_CPUTIME_ID, SIGEV_THREAD_ID delivery) that
// raises SIGPROF on that thread at a fixed CPU-time interval. The handler
// captures a backtrace() stack into the thread's bounded sample ring — the
// flight recorder's per-thread-ring pattern, but with a lock-free
// single-writer ring because a signal handler cannot take a mutex it might
// already hold. Symbolization (backtrace_symbols + __cxa_demangle) happens
// offline at dump time, never in the handler.
//
// Async-signal-safety rules the handler obeys (DESIGN.md section 13):
//   - no allocation, no locks, no iostream: it writes POD fields into a
//     preallocated slot and publishes with one release store;
//   - backtrace() is primed once in start() (its first call may allocate
//     libgcc state), after which glibc documents it signal-safe;
//   - errno is saved and restored;
//   - a per-ring test_and_set guard lets stop() wait out an in-flight
//     handler before the rings are read, so dumps never race a straggler.
//
// Feedback-free: sampling observes thread CPU time only; SA_RESTART keeps
// interrupted syscalls invisible to the simulation, and the bench event
// streams are held byte-identical with RFIDSIM_OBS=prof vs off. On
// non-Linux platforms (and under -DRFIDSIM_OBS=OFF) start() returns false
// and every other entry point degenerates to a no-op.
//
// Exports: folded stacks ("frame;frame;frame count" — flamegraph.pl
// input) and Chrome trace_event instant events, both deterministic given
// the same sample set.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace rfidsim::obs::prof {

/// Samples retained per thread before the ring wraps (newest win; drops
/// are tallied, never silent).
inline constexpr std::size_t kSampleRingCapacity = 8192;

/// Frames captured per sample. Deep enough to reach the portal/sweep
/// orchestration layers from any leaf; deeper stacks are truncated.
inline constexpr std::size_t kMaxFrames = 24;

/// Lane value for samples from threads that are not sweep-pool workers.
inline constexpr std::uint32_t kNoLane = 0xffffffffu;

struct ProfilerConfig {
  /// Per-thread CPU-time sampling period. Prime by default so the sampler
  /// cannot phase-lock with millisecond-periodic work.
  std::uint32_t interval_usec = 997;
  /// Frames to capture per sample (clamped to kMaxFrames).
  std::size_t max_depth = kMaxFrames;
};

/// One captured sample (POD: written from the signal handler).
struct Sample {
  std::uint64_t wall_ns = 0;  ///< CLOCK_MONOTONIC at capture.
  std::uint32_t lane = kNoLane;  ///< Sweep lane id, or kNoLane.
  std::uint32_t depth = 0;
  std::array<void*, kMaxFrames> frames{};  ///< Leaf first (backtrace order).
};

/// Registers the calling thread for sampling; idempotent (re-registering
/// only updates the lane id). The main thread is registered by start();
/// sweep::ThreadPool workers register themselves with their lane id. If
/// the profiler is already active, the thread's timer is armed
/// immediately. Unregistration is automatic at thread exit.
void register_thread(std::uint32_t lane = kNoLane);

/// Arms per-thread sample timers for every registered thread (and the
/// caller). Returns false when profiling is unavailable: non-Linux
/// platform, obs compiled out, obs runtime-disabled, or already active.
bool start(const ProfilerConfig& config = {});

/// Disarms every timer and waits out in-flight handlers; after stop() the
/// rings are quiescent and safe to dump.
void stop();

bool profiling_active();

std::uint64_t samples_recorded();  ///< Samples accepted (monotonic).
std::uint64_t samples_dropped();   ///< Samples overwritten by ring wrap.

/// Merged copy of every thread's retained samples (per-ring oldest-first).
/// Call after stop().
std::vector<Sample> samples_snapshot();

/// Aggregates samples into folded-stack form: "root;...;leaf" -> count.
/// The profiler's own handler frames (the top two: handler + signal
/// trampoline) are stripped. Exposed so tests can fold fabricated samples.
std::map<std::string, std::uint64_t> fold_samples(const std::vector<Sample>& samples);

/// Folded stacks, one "stack count" line each, sorted by stack — the
/// flamegraph.pl input format.
void write_folded(std::ostream& out);

/// Chrome trace_event instant events (ts = wall microseconds, tid = lane).
void write_profile_chrome_trace(std::ostream& out);

/// Atomically writes the folded-stack dump to `path` (tmp + rename).
/// Returns false if the file could not be written.
bool dump_profile(const std::string& path);

/// Discards every thread's samples and zeroes the tallies (registrations
/// survive).
void clear_profile();

}  // namespace rfidsim::obs::prof
