#include "obs/provenance.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/error.hpp"
#include "obs/flight_recorder.hpp"

namespace rfidsim::obs {

const char* batch_hop_name(BatchHop hop) {
  switch (hop) {
    case BatchHop::kEnqueued: return "enqueued";
    case BatchHop::kEncoded: return "encoded";
    case BatchHop::kNak: return "nak";
    case BatchHop::kDelivered: return "delivered";
    case BatchHop::kLost: return "lost";
    case BatchHop::kQuarantined: return "quarantined";
    case BatchHop::kValidated: return "validated";
    case BatchHop::kLate: return "late";
    case BatchHop::kStale: return "stale";
    case BatchHop::kMerged: return "merged";
    case BatchHop::kCheckpointed: return "checkpointed";
    case BatchHop::kRestored: return "restored";
    case BatchHop::kVisible: return "visible";
  }
  return "?";
}

std::uint64_t provenance_batch_id(std::uint32_t facility, std::uint64_t sequence) {
  // SplitMix64 finalizer over (facility, sequence) — the same mixing the
  // store uses for shard routing. The +1 keeps the (0, 0) batch away from
  // the reserved "no id" value; the final "| 1"-style guard is unnecessary
  // because the finalizer maps only one input to 0 and we shifted off it.
  std::uint64_t z = (static_cast<std::uint64_t>(facility) << 40) + sequence + 1;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z = z ^ (z >> 31);
  return z == 0 ? 1 : z;
}

ProvenanceLog::ProvenanceLog(std::size_t capacity) {
  require(capacity > 0, "ProvenanceLog: capacity must be positive");
  slots_.resize(capacity);
}

void ProvenanceLog::record(const ProvenanceRecord& rec) {
  if (!hooks_enabled()) return;
  // Mirror into the flight recorder so a crash dump carries the tail of
  // the provenance stream (a = batch id, b = hop value, c = facility).
  flight_record("provenance", batch_hop_name(rec.hop), rec.batch_id, rec.value,
                rec.facility, rec.time_s);
  bool wrapped = false;
  {
    std::lock_guard lock(mutex_);
    wrapped = written_ >= slots_.size();
    slots_[written_ % slots_.size()] = rec;
    ++written_;
  }
  static Counter& records = obs::counter("obs.provenance.records");
  records.add(1);
  if (wrapped) {
    static Counter& drops = obs::counter("obs.provenance.dropped_records");
    drops.add(1);
  }
}

std::vector<ProvenanceRecord> ProvenanceLog::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<ProvenanceRecord> out;
  const std::uint64_t kept = std::min<std::uint64_t>(written_, slots_.size());
  out.reserve(static_cast<std::size_t>(kept));
  for (std::uint64_t i = written_ - kept; i < written_; ++i) {
    out.push_back(slots_[i % slots_.size()]);
  }
  return out;
}

std::vector<ProvenanceRecord> ProvenanceLog::history(std::uint64_t batch_id) const {
  std::vector<ProvenanceRecord> out;
  for (const ProvenanceRecord& rec : snapshot()) {
    if (rec.batch_id == batch_id) out.push_back(rec);
  }
  return out;
}

std::uint64_t ProvenanceLog::recorded() const {
  std::lock_guard lock(mutex_);
  return written_;
}

std::uint64_t ProvenanceLog::dropped() const {
  std::lock_guard lock(mutex_);
  return written_ > slots_.size() ? written_ - slots_.size() : 0;
}

void ProvenanceLog::write_jsonl(std::ostream& out) const {
  char line[64];
  for (const ProvenanceRecord& rec : snapshot()) {
    out << "{\"batch_id\":" << rec.batch_id << ",\"hop\":\""
        << batch_hop_name(rec.hop) << "\",\"facility\":";
    if (rec.facility == kNoFacility) {
      out << -1;
    } else {
      out << rec.facility;
    }
    std::snprintf(line, sizeof line, "%.6f", rec.time_s);
    out << ",\"value\":" << rec.value << ",\"t_s\":" << line << "}\n";
  }
}

void ProvenanceLog::write_chrome_trace(std::ostream& out) const {
  const std::vector<ProvenanceRecord> records = snapshot();
  out << "{\"traceEvents\":[";
  char buf[64];
  for (std::size_t i = 0; i < records.size(); ++i) {
    const ProvenanceRecord& rec = records[i];
    if (i > 0) out << ',';
    // Instant events on the *simulated* time axis: ts is time_s in
    // microseconds (clamped at 0 — a handful of hops carry no sim time),
    // tid the facility, so per-facility pipelines land on separate rows.
    const double ts = rec.time_s < 0 ? 0.0 : rec.time_s * 1e6;
    std::snprintf(buf, sizeof buf, "%.3f", ts);
    out << "{\"name\":\"" << batch_hop_name(rec.hop)
        << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":"
        << (rec.facility == kNoFacility ? 0xffffu : rec.facility)
        << ",\"ts\":" << buf << ",\"args\":{\"batch_id\":" << rec.batch_id
        << ",\"value\":" << rec.value << "}}";
  }
  out << "],\"displayTimeUnit\":\"ms\"}\n";
}

void ProvenanceLog::clear() {
  std::lock_guard lock(mutex_);
  written_ = 0;
}

ProvenanceLog& provenance_log() {
  static ProvenanceLog instance;
  return instance;
}

}  // namespace rfidsim::obs
