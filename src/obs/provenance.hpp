// rfidsim::obs — per-batch provenance tracing for the fleet pipeline.
//
// Every uploaded batch carries a deterministic nonzero batch id (minted by
// sys::EventUploader from the facility and a per-uploader sequence number)
// through the whole pipeline: link upload -> wire framing -> feed
// validation -> store merge -> checkpoint. Each hop appends one timestamped
// ProvenanceRecord to a process-wide bounded ring, so a batch that went
// missing — lost to the link, quarantined after a NAK storm, screened as
// stale — is reconstructable hop by hop from the log alone.
//
// Contracts (the same feedback-free rules as the rest of obs):
//   - Batch ids are pure arithmetic over (facility, sequence) and are
//     *always* assigned, obs on or off — they are plumbing, not telemetry —
//     but never enter stored truth: TrackingStore::digest() hashes
//     sightings only, so ids can never change a simulated bit.
//   - record() is a no-op unless hooks_enabled(); under -DRFIDSIM_OBS=OFF
//     the constant-false gate lets the optimizer drop every call site.
//   - The ring is bounded (kProvenanceLogCapacity) and overwrites oldest
//     records on wrap; overwrites are tallied, never silent (dropped(),
//     mirrored to the obs.provenance.dropped_records counter).
//
// Exports: JSONL (one record per line, schema in EXPERIMENTS.md) and
// Chrome trace_event instant events on the simulated-time axis. Every
// record is also mirrored into the crash flight recorder, so a post-mortem
// dump carries the tail of the provenance stream next to the checkpoint.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <vector>

#include "obs/metrics.hpp"

namespace rfidsim::obs {

/// One pipeline station a batch can pass through (or die at).
enum class BatchHop : std::uint8_t {
  kEnqueued = 0,     ///< Uploader formed the batch (value = events).
  kEncoded = 1,      ///< Framed for the wire (value = framed bytes).
  kNak = 2,          ///< Receiver NAK'd a corrupt frame (value = NAKs so far).
  kDelivered = 3,    ///< Backend received it (value = events).
  kLost = 4,         ///< Link retry budget exhausted (value = events).
  kQuarantined = 5,  ///< NAK budget exhausted; dropped (value = events).
  kValidated = 6,    ///< Feed validation done (value = accepted events).
  kLate = 7,         ///< Arrived after the pass window closed.
  kStale = 8,        ///< Arrived past the staleness horizon.
  kMerged = 9,       ///< Store merge applied (value = events).
  kCheckpointed = 10,  ///< Captured by a checkpoint (value = sequence).
  kRestored = 11,      ///< Restored from a checkpoint (value = sequence).
  kVisible = 12,       ///< Watermark advanced past the batch (value = events).
};

/// Stable lower-snake name ("enqueued", "merged", ...) for dumps and logs.
const char* batch_hop_name(BatchHop hop);

/// Deterministic nonzero batch id: a SplitMix64-style mix of the facility
/// and a per-uploader sequence number. Pure arithmetic — same inputs, same
/// id, on every platform and every obs configuration. 0 is reserved for
/// "no id" (batches that predate the uploader, hand-built test batches).
std::uint64_t provenance_batch_id(std::uint32_t facility, std::uint64_t sequence);

/// The facility value hops use when no facility applies (link-only
/// uploads, store-level checkpoint records).
inline constexpr std::uint32_t kNoFacility = 0xffffffffu;

/// One hop of one batch.
struct ProvenanceRecord {
  std::uint64_t batch_id = 0;
  BatchHop hop = BatchHop::kEnqueued;
  std::uint32_t facility = kNoFacility;
  std::uint64_t value = 0;  ///< Hop-specific payload (see BatchHop docs).
  double time_s = 0.0;      ///< Simulated time of the hop; -1 when none.
};

/// Records retained before the ring wraps (newest win; drops are tallied).
inline constexpr std::size_t kProvenanceLogCapacity = 1 << 16;

/// Bounded, mutex-protected provenance ring. One process-wide instance
/// (provenance_log()) is what the pipeline hooks feed; tests build their
/// own.
class ProvenanceLog {
 public:
  explicit ProvenanceLog(std::size_t capacity = kProvenanceLogCapacity);

  /// Appends one record. No-op unless hooks_enabled(); mirrors the record
  /// into the crash flight recorder (category "provenance").
  void record(const ProvenanceRecord& rec);

  /// Oldest-to-newest copy of the retained records. Safe to call while
  /// other threads keep recording.
  std::vector<ProvenanceRecord> snapshot() const;
  /// The retained hops of one batch, oldest first.
  std::vector<ProvenanceRecord> history(std::uint64_t batch_id) const;

  std::uint64_t recorded() const;  ///< Records accepted (monotonic).
  std::uint64_t dropped() const;   ///< Records overwritten by ring wrap.

  /// One JSON object per line (schema in EXPERIMENTS.md).
  void write_jsonl(std::ostream& out) const;
  /// Chrome trace_event instant events on the simulated-time axis
  /// (ts = time_s in microseconds; tid = facility).
  void write_chrome_trace(std::ostream& out) const;

  /// Discards all records and zeroes the drop tally.
  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<ProvenanceRecord> slots_;
  std::uint64_t written_ = 0;  ///< Monotonic; slot index = written % capacity.
};

/// The process-wide provenance log every pipeline hook feeds.
ProvenanceLog& provenance_log();

}  // namespace rfidsim::obs
