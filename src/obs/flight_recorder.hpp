// rfidsim::obs — crash flight recorder.
//
// A bounded per-thread ring of recent structured records (the TraceSpan
// ring pattern, but for discrete events rather than spans) that can be
// dumped atomically to a file — on explicit trigger, or from a fatal-signal
// handler installed by install_crash_handler(). The point is post-mortems:
// when a backend dies mid-ingest, the dump preserves the last few thousand
// pipeline events (provenance hops, checkpoint writes, pass boundaries)
// next to whatever checkpoint hit the disk, so the crash is attributable
// without a debugger.
//
// Contracts:
//   - flight_record() is gated on hooks_enabled(): a few nanoseconds when
//     obs is off, compiled out entirely under -DRFIDSIM_OBS=OFF (the dump
//     then contains only its meta line — still written, still readable).
//   - Rings are bounded (kFlightRingCapacity per thread); wrap overwrites
//     the oldest records and tallies the loss (flight_dropped()), never
//     silently.
//   - `category` and `event` must be string literals (stored by pointer,
//     exactly like TraceSpan names).
//   - Explicit dumps are atomic: written to "<path>.tmp", then renamed.
//     The signal handler uses the same tmp+rename dance with raw
//     async-signal-safe write(2)/rename(2) calls and try-locks each ring —
//     a ring wedged by the crashing thread is skipped, not deadlocked on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace rfidsim::obs {

/// One recorded event, as returned by flight_snapshot().
struct FlightRecord {
  std::uint64_t seq = 0;      ///< Global order stamp (cross-thread total order).
  std::uint64_t wall_ns = 0;  ///< trace_now_ns() at record time.
  const char* category = "";  ///< Static string literal ("provenance", ...).
  const char* event = "";     ///< Static string literal ("merged", ...).
  std::uint64_t a = 0;        ///< Event-specific payload words.
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  double time_s = -1.0;  ///< Simulated time; -1 when none applies.
  std::uint32_t tid = 0; ///< Recording thread's registration index.
};

/// Records per thread ring; the newest records win once a ring wraps.
inline constexpr std::size_t kFlightRingCapacity = 2048;

/// Appends one record to the calling thread's ring. No-op unless
/// hooks_enabled().
void flight_record(const char* category, const char* event, std::uint64_t a = 0,
                   std::uint64_t b = 0, std::uint64_t c = 0, double time_s = -1.0);

/// Merged copy of every thread's retained records, ordered by seq.
std::vector<FlightRecord> flight_snapshot();

std::uint64_t flight_recorded();  ///< Records accepted (monotonic).
std::uint64_t flight_dropped();   ///< Records overwritten by ring wrap.

/// Explicit-dump bookkeeping, surfaced in FleetService::health_snapshot():
/// a fleet whose black box cannot reach the disk should say so *before*
/// the crash that needed it. Counts dump_flight_recorder() calls only (the
/// signal handler cannot update counters it might race).
std::uint64_t flight_dump_attempts();
std::uint64_t flight_dump_failures();

/// Writes the dump (meta line + one JSON object per record, schema in
/// EXPERIMENTS.md) to `out`.
void write_flight_dump(std::ostream& out, const char* reason = "explicit");

/// Atomically writes the dump to `path` (tmp + rename). Returns false if
/// the file could not be written.
bool dump_flight_recorder(const std::string& path);

/// Installs handlers for SIGSEGV/SIGBUS/SIGILL/SIGFPE/SIGABRT that dump
/// the flight recorder to `path` and then re-raise with the default
/// disposition (so exit codes / core dumps are unchanged). `path` is
/// copied into static storage; later calls replace it. Returns false on
/// platforms without sigaction.
bool install_crash_handler(const std::string& path);

/// The path the crash handler will dump to ("" when none installed).
const char* crash_dump_path();

/// Discards every thread's records and zeroes the tallies (registrations
/// survive).
void clear_flight_recorder();

}  // namespace rfidsim::obs
