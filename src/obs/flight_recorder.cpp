#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>

#include "obs/trace.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define RFIDSIM_FLIGHT_HAS_SIGNALS 1
#include <csignal>
#include <fcntl.h>
#include <unistd.h>
#endif

namespace rfidsim::obs {

namespace {

/// One thread's record ring — the TraceSpan ThreadRing pattern. The writer
/// thread and exporters synchronise on the ring's own mutex; the signal
/// handler only ever try-locks it.
struct FlightRing {
  std::mutex mutex;
  std::vector<FlightRecord> slots{std::vector<FlightRecord>(kFlightRingCapacity)};
  std::uint64_t written = 0;  ///< Monotonic; slot index is written % capacity.
  std::uint32_t tid = 0;

  /// Returns true when the push overwrote a retained record (ring wrap).
  bool push(const FlightRecord& rec) {
    std::lock_guard lock(mutex);
    const bool dropped = written >= kFlightRingCapacity;
    slots[written % kFlightRingCapacity] = rec;
    ++written;
    return dropped;
  }

  void snapshot(std::vector<FlightRecord>& out) {
    std::lock_guard lock(mutex);
    const std::uint64_t kept = std::min<std::uint64_t>(written, kFlightRingCapacity);
    for (std::uint64_t i = written - kept; i < written; ++i) {
      out.push_back(slots[i % kFlightRingCapacity]);
    }
  }

  void clear() {
    std::lock_guard lock(mutex);
    written = 0;
  }
};

struct FlightRecorder {
  std::mutex mutex;
  std::vector<std::shared_ptr<FlightRing>> rings;

  std::shared_ptr<FlightRing> register_thread() {
    auto ring = std::make_shared<FlightRing>();
    std::lock_guard lock(mutex);
    ring->tid = static_cast<std::uint32_t>(rings.size());
    rings.push_back(ring);
    return ring;
  }

  std::vector<std::shared_ptr<FlightRing>> all() {
    std::lock_guard lock(mutex);
    return rings;
  }
};

FlightRecorder& flight_recorder() {
  static FlightRecorder instance;
  return instance;
}

FlightRing& flight_ring() {
  thread_local std::shared_ptr<FlightRing> ring =
      flight_recorder().register_thread();
  return *ring;
}

/// Global order stamp and tallies. Atomics so the signal handler can read
/// them without taking any lock.
std::atomic<std::uint64_t> g_seq{0};
std::atomic<std::uint64_t> g_recorded{0};
std::atomic<std::uint64_t> g_dropped{0};

// --- async-signal-safe formatting ------------------------------------
//
// The dump format is shared between the ostream path and the signal
// handler, so every line is built with these allocation-free helpers
// (snprintf is not on the async-signal-safe list).

std::size_t put_str(char* buf, std::size_t cap, std::size_t at, const char* s) {
  while (*s != '\0' && at < cap) buf[at++] = *s++;
  return at;
}

std::size_t put_u64(char* buf, std::size_t cap, std::size_t at, std::uint64_t v) {
  char digits[20];
  std::size_t n = 0;
  do {
    digits[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0 && at < cap) buf[at++] = digits[--n];
  return at;
}

/// Seconds with fixed six decimals (micro resolution), sign included.
std::size_t put_seconds(char* buf, std::size_t cap, std::size_t at, double t) {
  if (t < 0) {
    at = put_str(buf, cap, at, "-");
    t = -t;
  }
  const auto micros = static_cast<std::uint64_t>(t * 1e6 + 0.5);
  at = put_u64(buf, cap, at, micros / 1000000);
  at = put_str(buf, cap, at, ".");
  char frac[6];
  std::uint64_t f = micros % 1000000;
  for (std::size_t i = 6; i-- > 0;) {
    frac[i] = static_cast<char>('0' + f % 10);
    f /= 10;
  }
  for (std::size_t i = 0; i < 6 && at < cap; ++i) buf[at++] = frac[i];
  return at;
}

/// One record as a JSONL line (newline included). Categories and event
/// names are our own static literals: no JSON escaping needed.
std::size_t format_record(char* buf, std::size_t cap, const FlightRecord& rec) {
  std::size_t at = 0;
  at = put_str(buf, cap, at, "{\"seq\":");
  at = put_u64(buf, cap, at, rec.seq);
  at = put_str(buf, cap, at, ",\"wall_ns\":");
  at = put_u64(buf, cap, at, rec.wall_ns);
  at = put_str(buf, cap, at, ",\"cat\":\"");
  at = put_str(buf, cap, at, rec.category);
  at = put_str(buf, cap, at, "\",\"event\":\"");
  at = put_str(buf, cap, at, rec.event);
  at = put_str(buf, cap, at, "\",\"a\":");
  at = put_u64(buf, cap, at, rec.a);
  at = put_str(buf, cap, at, ",\"b\":");
  at = put_u64(buf, cap, at, rec.b);
  at = put_str(buf, cap, at, ",\"c\":");
  at = put_u64(buf, cap, at, rec.c);
  at = put_str(buf, cap, at, ",\"t_s\":");
  at = put_seconds(buf, cap, at, rec.time_s);
  at = put_str(buf, cap, at, ",\"tid\":");
  at = put_u64(buf, cap, at, rec.tid);
  at = put_str(buf, cap, at, "}\n");
  return at;
}

std::size_t format_meta(char* buf, std::size_t cap, const char* reason) {
  std::size_t at = 0;
  at = put_str(buf, cap, at, "{\"flight_recorder\":\"rfidsim\",\"reason\":\"");
  at = put_str(buf, cap, at, reason);
  at = put_str(buf, cap, at, "\",\"recorded\":");
  at = put_u64(buf, cap, at, g_recorded.load(std::memory_order_relaxed));
  at = put_str(buf, cap, at, ",\"dropped\":");
  at = put_u64(buf, cap, at, g_dropped.load(std::memory_order_relaxed));
  at = put_str(buf, cap, at, "}\n");
  return at;
}

constexpr std::size_t kLineCap = 512;

}  // namespace

void flight_record(const char* category, const char* event, std::uint64_t a,
                   std::uint64_t b, std::uint64_t c, double time_s) {
  if (!hooks_enabled()) return;
  FlightRing& ring = flight_ring();
  FlightRecord rec;
  rec.seq = g_seq.fetch_add(1, std::memory_order_relaxed);
  rec.wall_ns = trace_now_ns();
  rec.category = category;
  rec.event = event;
  rec.a = a;
  rec.b = b;
  rec.c = c;
  rec.time_s = time_s;
  rec.tid = ring.tid;
  g_recorded.fetch_add(1, std::memory_order_relaxed);
  if (ring.push(rec)) g_dropped.fetch_add(1, std::memory_order_relaxed);
}

std::vector<FlightRecord> flight_snapshot() {
  std::vector<FlightRecord> out;
  for (const auto& ring : flight_recorder().all()) ring->snapshot(out);
  std::sort(out.begin(), out.end(),
            [](const FlightRecord& x, const FlightRecord& y) { return x.seq < y.seq; });
  return out;
}

std::uint64_t flight_recorded() {
  return g_recorded.load(std::memory_order_relaxed);
}

std::uint64_t flight_dropped() {
  return g_dropped.load(std::memory_order_relaxed);
}

void write_flight_dump(std::ostream& out, const char* reason) {
  char line[kLineCap];
  out.write(line, static_cast<std::streamsize>(format_meta(line, kLineCap, reason)));
  for (const FlightRecord& rec : flight_snapshot()) {
    out.write(line, static_cast<std::streamsize>(format_record(line, kLineCap, rec)));
  }
}

namespace {
std::atomic<std::uint64_t> g_dump_attempts{0};
std::atomic<std::uint64_t> g_dump_failures{0};
}  // namespace

std::uint64_t flight_dump_attempts() {
  return g_dump_attempts.load(std::memory_order_relaxed);
}

std::uint64_t flight_dump_failures() {
  return g_dump_failures.load(std::memory_order_relaxed);
}

bool dump_flight_recorder(const std::string& path) {
  g_dump_attempts.fetch_add(1, std::memory_order_relaxed);
  const auto fail = [] {
    g_dump_failures.fetch_add(1, std::memory_order_relaxed);
    return false;
  };
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return fail();
    write_flight_dump(out);
    if (!out) return fail();
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) return fail();
  return true;
}

void clear_flight_recorder() {
  for (const auto& ring : flight_recorder().all()) ring->clear();
  g_recorded.store(0, std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);
}

#ifdef RFIDSIM_FLIGHT_HAS_SIGNALS

namespace {

char g_crash_path[512] = "";
char g_crash_tmp[520] = "";
std::atomic<bool> g_dumping{false};

void write_all(int fd, const char* buf, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t w = ::write(fd, buf + done, n - done);
    if (w <= 0) return;
    done += static_cast<std::size_t>(w);
  }
}

/// The handler proper. Only async-signal-safe calls (open/write/rename/
/// raise) plus try-locks: a mutex held by the crashing thread skips its
/// ring rather than deadlocking the dump.
void crash_handler(int sig) {
  if (!g_dumping.exchange(true)) {
    const int fd = ::open(g_crash_tmp, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      char line[kLineCap];
      char reason[32];
      std::size_t at = put_str(reason, sizeof reason, 0, "signal:");
      at = put_u64(reason, sizeof reason, at, static_cast<std::uint64_t>(sig));
      reason[std::min(at, sizeof reason - 1)] = '\0';
      write_all(fd, line, format_meta(line, kLineCap, reason));

      FlightRecorder& rec = flight_recorder();
      if (rec.mutex.try_lock()) {
        for (const auto& ring : rec.rings) {
          if (!ring->mutex.try_lock()) continue;
          const std::uint64_t kept =
              std::min<std::uint64_t>(ring->written, kFlightRingCapacity);
          for (std::uint64_t i = ring->written - kept; i < ring->written; ++i) {
            write_all(fd, line,
                      format_record(line, kLineCap,
                                    ring->slots[i % kFlightRingCapacity]));
          }
          ring->mutex.unlock();
        }
        rec.mutex.unlock();
      }
      ::close(fd);
      ::rename(g_crash_tmp, g_crash_path);
    }
  }
  // SA_RESETHAND restored the default disposition; re-raise so the exit
  // code / core dump is exactly what the signal would have produced.
  ::raise(sig);
}

}  // namespace

bool install_crash_handler(const std::string& path) {
  std::strncpy(g_crash_path, path.c_str(), sizeof g_crash_path - 1);
  g_crash_path[sizeof g_crash_path - 1] = '\0';
  std::strncpy(g_crash_tmp, g_crash_path, sizeof g_crash_tmp - 5);
  std::strcat(g_crash_tmp, ".tmp");

  struct sigaction action;
  std::memset(&action, 0, sizeof action);
  action.sa_handler = crash_handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESETHAND | SA_NODEFER;
  const int signals[] = {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT};
  bool ok = true;
  for (const int sig : signals) ok = sigaction(sig, &action, nullptr) == 0 && ok;
  return ok;
}

const char* crash_dump_path() { return g_crash_path; }

#else  // !RFIDSIM_FLIGHT_HAS_SIGNALS

bool install_crash_handler(const std::string&) { return false; }
const char* crash_dump_path() { return ""; }

#endif

}  // namespace rfidsim::obs
