#include "obs/attribution.hpp"

#include <array>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string>

#include "common/table.hpp"
#include "obs/trace.hpp"

namespace rfidsim::obs::prof {

namespace detail {

std::atomic<bool>& attribution_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

}  // namespace detail

namespace {

/// Global per-phase accumulators. Phases are coarse (a handful of
/// transitions per pass, never per tag), so contended fetch_adds are not a
/// hot-path concern.
struct PhaseCell {
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> self_ns{0};
};

std::array<PhaseCell, kPhaseCount>& cells() {
  static std::array<PhaseCell, kPhaseCount> c;
  return c;
}

/// Per-thread phase stack for self-time accounting: `last_stamp_ns` is the
/// wall time of the most recent push/pop on this thread, so the span since
/// then belongs entirely to the phase on top of the stack at that moment.
struct PhaseStack {
  static constexpr std::size_t kMaxDepth = 32;
  std::array<Phase, kMaxDepth> frames{};
  std::size_t depth = 0;
  std::uint64_t last_stamp_ns = 0;
};

PhaseStack& stack() {
  thread_local PhaseStack s;
  return s;
}

void charge(Phase phase, std::uint64_t ns) {
  cells()[static_cast<std::size_t>(phase)].self_ns.fetch_add(
      ns, std::memory_order_relaxed);
}

}  // namespace

const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::kPathEval: return "path_eval";
    case Phase::kPortalSim: return "portal_sim";
    case Phase::kGen2Inventory: return "gen2_inventory";
    case Phase::kEventLogAppend: return "event_log_append";
    case Phase::kStoreRoute: return "store_route";
    case Phase::kStoreMerge: return "store_merge";
    case Phase::kGen2Fusion: return "gen2_fusion";
  }
  return "unknown";
}

bool attribution_enabled() {
  return detail::attribution_flag().load(std::memory_order_relaxed);
}

void set_attribution_enabled(bool on) {
  detail::attribution_flag().store(on, std::memory_order_relaxed);
}

ScopedPhase::ScopedPhase(Phase phase) : phase_(phase) {
  if (!attribution_hooks_enabled()) return;
  PhaseStack& s = stack();
  if (s.depth >= PhaseStack::kMaxDepth) return;  // Runaway nesting: drop.
  const std::uint64_t now = trace_now_ns();
  if (s.depth > 0) charge(s.frames[s.depth - 1], now - s.last_stamp_ns);
  s.frames[s.depth++] = phase;
  s.last_stamp_ns = now;
  cells()[static_cast<std::size_t>(phase)].calls.fetch_add(
      1, std::memory_order_relaxed);
  active_ = true;
}

ScopedPhase::~ScopedPhase() {
  if (!active_) return;
  PhaseStack& s = stack();
  const std::uint64_t now = trace_now_ns();
  // The frame on top is ours by RAII nesting (ScopedPhase is scope-bound
  // and non-movable, so destruction order mirrors construction order).
  charge(phase_, now - s.last_stamp_ns);
  if (s.depth > 0) --s.depth;
  s.last_stamp_ns = now;
}

PhaseTotals phase_totals(Phase phase) {
  const PhaseCell& cell = cells()[static_cast<std::size_t>(phase)];
  PhaseTotals totals;
  totals.calls = cell.calls.load(std::memory_order_relaxed);
  totals.self_seconds =
      static_cast<double>(cell.self_ns.load(std::memory_order_relaxed)) * 1e-9;
  return totals;
}

void reset_attribution() {
  for (PhaseCell& cell : cells()) {
    cell.calls.store(0, std::memory_order_relaxed);
    cell.self_ns.store(0, std::memory_order_relaxed);
  }
}

void publish_attribution_metrics() {
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const Phase phase = static_cast<Phase>(i);
    const PhaseTotals totals = phase_totals(phase);
    registry()
        .gauge("obs.attribution.phase_calls", {{"phase", phase_name(phase)}})
        .set(static_cast<double>(totals.calls));
    registry()
        .gauge("obs.attribution.self_seconds", {{"phase", phase_name(phase)}})
        .set(totals.self_seconds);
  }
}

namespace {

struct ReportData {
  std::array<PhaseTotals, kPhaseCount> phases;
  double covered_s = 0.0;
  double portal_s = 0.0;     ///< portal_sim + gen2_inventory + event_log_append
                             ///< + gen2_fusion.
  double path_eval_s = 0.0;
  double store_merge_s = 0.0; ///< store_route + store_merge.
};

ReportData gather() {
  ReportData data;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    data.phases[i] = phase_totals(static_cast<Phase>(i));
    data.covered_s += data.phases[i].self_seconds;
  }
  data.path_eval_s =
      data.phases[static_cast<std::size_t>(Phase::kPathEval)].self_seconds;
  data.portal_s =
      data.phases[static_cast<std::size_t>(Phase::kPortalSim)].self_seconds +
      data.phases[static_cast<std::size_t>(Phase::kGen2Inventory)].self_seconds +
      data.phases[static_cast<std::size_t>(Phase::kEventLogAppend)].self_seconds +
      data.phases[static_cast<std::size_t>(Phase::kGen2Fusion)].self_seconds;
  data.store_merge_s =
      data.phases[static_cast<std::size_t>(Phase::kStoreRoute)].self_seconds +
      data.phases[static_cast<std::size_t>(Phase::kStoreMerge)].self_seconds;
  return data;
}

double share_of(double part, double total) {
  return total > 0.0 ? part / total : 0.0;
}

std::string fmt_seconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6f", s);
  return buf;
}

std::string fmt_share(double share) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", share * 100.0);
  return buf;
}

}  // namespace

void write_attribution_report(std::ostream& out) {
  const ReportData data = gather();
  out << "attribution report (exclusive wall-clock per stage, "
      << fmt_seconds(data.covered_s) << "s covered):\n";
  TextTable table({"phase", "calls", "self_s", "share"});
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const PhaseTotals& totals = data.phases[i];
    table.add_row({phase_name(static_cast<Phase>(i)),
                   std::to_string(totals.calls), fmt_seconds(totals.self_seconds),
                   fmt_share(share_of(totals.self_seconds, data.covered_s))});
  }
  out << table.render();
  out << "stage groups: portal_sim "
      << fmt_share(share_of(data.portal_s, data.covered_s)) << ", path_eval "
      << fmt_share(share_of(data.path_eval_s, data.covered_s))
      << ", store_merge "
      << fmt_share(share_of(data.store_merge_s, data.covered_s)) << "\n";
}

void write_attribution_json(std::ostream& out) {
  const ReportData data = gather();
  out << "{\"attribution\":\"rfidsim\",\"covered_seconds\":"
      << fmt_seconds(data.covered_s) << ",\"phases\":[";
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const PhaseTotals& totals = data.phases[i];
    if (i != 0) out << ",";
    out << "{\"phase\":\"" << phase_name(static_cast<Phase>(i))
        << "\",\"calls\":" << totals.calls << ",\"self_seconds\":"
        << fmt_seconds(totals.self_seconds) << ",\"share\":"
        << fmt_seconds(share_of(totals.self_seconds, data.covered_s)) << "}";
  }
  out << "],\"groups\":{\"portal_sim\":"
      << fmt_seconds(share_of(data.portal_s, data.covered_s))
      << ",\"path_eval\":"
      << fmt_seconds(share_of(data.path_eval_s, data.covered_s))
      << ",\"store_merge\":"
      << fmt_seconds(share_of(data.store_merge_s, data.covered_s)) << "}}\n";
}

bool dump_attribution(const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) return false;
    write_attribution_json(out);
    if (!out) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace rfidsim::obs::prof
