#include "obs/structured_log.hpp"

#include <cstdio>
#include <ostream>

#include "obs/trace.hpp"

namespace rfidsim::obs {

namespace {

/// Same formatting as the metrics exposition: %.9g keeps values
/// unambiguous and stable across platforms.
void append_num(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

void append_field_value(std::string& out, const LogField& f) {
  switch (f.kind) {
    case LogField::Kind::kString:
      out.push_back('"');
      append_json_escaped(out, f.str);
      out.push_back('"');
      break;
    case LogField::Kind::kDouble:
      append_num(out, f.num);
      break;
    case LogField::Kind::kInt:
      out += std::to_string(f.int_num);
      break;
    case LogField::Kind::kUInt:
      out += std::to_string(f.uint_num);
      break;
    case LogField::Kind::kBool:
      out += f.flag ? "true" : "false";
      break;
  }
}

}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "?";
}

void append_json_escaped(std::string& out, std::string_view value) {
  for (char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
}

StructuredLog::StructuredLog(LogRateLimit limits) : limits_(limits) {}

void StructuredLog::new_window() {
  window_counts_.clear();
  window_total_ = 0;
}

void StructuredLog::reset() {
  new_window();
  dropped_ = 0;
  emitted_ = 0;
}

bool StructuredLog::log(LogLevel level, std::string_view component,
                        std::string_view event, double sim_time_s,
                        std::initializer_list<LogField> fields) {
  // Master switch first: compiled out (constant false) or runtime-off,
  // the sink records nothing — not even rate-limit accounting, so the
  // disabled configuration has zero state drift.
  if (!hooks_enabled()) return false;
  if (static_cast<int>(level) < static_cast<int>(min_level_)) return false;

  // Deterministic rate limiting: budgets per (component, event) key and
  // per window, advanced only by explicit new_window() calls.
  if (limits_.total_per_window > 0 && window_total_ >= limits_.total_per_window) {
    ++dropped_;
    obs::counter("obs.log.dropped_records").add(1);
    return false;
  }
  if (limits_.per_key_per_window > 0) {
    std::string key(component);
    key.push_back('\x1f');
    key.append(event);
    std::size_t& used = window_counts_[std::move(key)];
    if (used >= limits_.per_key_per_window) {
      ++dropped_;
      obs::counter("obs.log.dropped_records").add(1);
      return false;
    }
    ++used;
  }
  ++window_total_;

  if (sink_ == nullptr) return false;

  std::string line;
  line.reserve(128);
  line += "{\"lvl\":\"";
  line += log_level_name(level);
  line += "\",\"comp\":\"";
  append_json_escaped(line, component);
  line += "\",\"event\":\"";
  append_json_escaped(line, event);
  line.push_back('"');
  if (sim_time_s >= 0.0) {
    line += ",\"t_s\":";
    append_num(line, sim_time_s);
  }
  if (wall_clock_) {
    line += ",\"wall_ns\":";
    line += std::to_string(trace_now_ns());
  }
  for (const LogField& f : fields) {
    line += ",\"";
    append_json_escaped(line, f.key);
    line += "\":";
    append_field_value(line, f);
  }
  line += "}\n";
  *sink_ << line;
  ++emitted_;
  obs::counter("obs.log.records").add(1);
  return true;
}

StructuredLog& structured_log() {
  static StructuredLog instance;
  return instance;
}

}  // namespace rfidsim::obs
