#include "system/portal.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numbers>
#include <unordered_set>

#include "common/error.hpp"
#include "obs/attribution.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rf/link_budget.hpp"

namespace rfidsim::sys {

namespace {

// Gaussian tail probability P(N(0, sigma) > -margin).
double exceed_probability(double margin_db, double sigma_db) {
  if (sigma_db <= 0.0) return margin_db > 0.0 ? 1.0 : 0.0;
  return 0.5 * std::erfc(-margin_db / (sigma_db * std::numbers::sqrt2));
}

/// Portal-level registry hooks (one add per reader round / fault event).
struct PortalMetrics {
  obs::Counter& rounds = obs::counter("sys.portal.rounds");
  obs::Counter& read_events = obs::counter("sys.portal.read_events");
  obs::Counter& crashes = obs::counter("sys.portal.reader_crashes");
  obs::Gauge& downtime_s = obs::gauge("sys.portal.reader_downtime_seconds");
  obs::Counter& jammed_rounds = obs::counter("sys.portal.jammed_rounds");
  obs::Counter& dead_antenna_rounds = obs::counter("sys.portal.dead_antenna_rounds");
  obs::Counter& passes = obs::counter("sys.portal.passes");
};

PortalMetrics& portal_metrics() {
  static PortalMetrics m;
  return m;
}

}  // namespace

const PortalSimulator::ReaderHooks& PortalSimulator::reader_hooks(std::size_t r) {
  if (reader_hooks_.empty()) {
    reader_hooks_.reserve(readers_.size());
    char label[24];
    for (std::size_t i = 0; i < readers_.size(); ++i) {
      std::snprintf(label, sizeof label, "r%zu", i);
      reader_hooks_.push_back(ReaderHooks{
          .rounds = &obs::counter("sys.portal.rounds", {{"reader", label}}),
          .read_events = &obs::counter("sys.portal.read_events", {{"reader", label}}),
          .crashes = &obs::counter("sys.portal.reader_crashes", {{"reader", label}}),
          .jammed_rounds = &obs::counter("sys.portal.jammed_rounds", {{"reader", label}}),
          .dead_antenna_rounds =
              &obs::counter("sys.portal.dead_antenna_rounds", {{"reader", label}}),
      });
    }
  }
  return reader_hooks_[r];
}

PortalSimulator::PortalSimulator(const scene::Scene& scene, PortalConfig config)
    : scene_(scene),
      config_(std::move(config)),
      evaluator_(scene, config_.evaluator),
      tags_(scene.all_tags()) {
  require(!config_.readers.empty(), "PortalSimulator: portal needs at least one reader");
  require(config_.end_time_s > config_.start_time_s,
          "PortalSimulator: end time must be after start time");

  // Compute static jam probabilities: in buffered continuous mode every
  // reader's carrier is on for the whole pass.
  std::vector<gen2::ReaderRfState> rf_states;
  for (const ReaderConfig& rc : config_.readers) {
    require(!rc.antenna_indices.empty(), "PortalSimulator: reader has no antennas");
    for (std::size_t a : rc.antenna_indices) {
      require(a < scene.antennas.size(), "PortalSimulator: antenna index out of range");
    }
    gen2::ReaderRfState st;
    st.position = scene.antennas[rc.antenna_indices.front()].pose.position;
    st.channel = rc.channel;
    st.dense_reader_mode = rc.dense_reader_mode;
    rf_states.push_back(st);
  }

  const gen2::ReaderInterference interference(config_.interference);
  for (std::size_t r = 0; r < config_.readers.size(); ++r) {
    const ReaderConfig& rc = config_.readers[r];
    std::vector<gen2::ReaderRfState> others;
    for (std::size_t o = 0; o < rf_states.size(); ++o) {
      if (o != r) others.push_back(rf_states[o]);
    }
    gen2::InventoryConfig inv = rc.inventory;
    inv.command_jam_probability =
        std::clamp(inv.command_jam_probability +
                       interference.command_jam_probability(rf_states[r], others),
                   0.0, 1.0);

    // Per-session engines for the multi-session strategy, built from the
    // same interference-adjusted config so each session pass sees the same
    // RF environment as the single-session baseline.
    std::vector<gen2::InventoryEngine> session_engines;
    if (rc.strategy.mode == InventoryMode::kMultiSession) {
      require(!rc.strategy.sessions.empty(),
              "PortalSimulator: multi-session strategy needs at least one session");
      session_engines.reserve(rc.strategy.sessions.size());
      for (gen2::Session s : rc.strategy.sessions) {
        gen2::InventoryConfig per_session = inv;
        per_session.session = s;
        session_engines.emplace_back(per_session);
      }
    }

    readers_.push_back(ReaderRuntime{
        .config = rc,
        .mux = AntennaMux(rc.antenna_indices, rc.antenna_dwell_s),
        .engine = gen2::InventoryEngine(inv),
        .session_engines = std::move(session_engines),
        .tag_states = std::vector<gen2::TagState>(tags_.size()),
        .clock_s = config_.start_time_s,
        .jam_probability = inv.command_jam_probability,
    });
  }
}

gen2::InventoryEngine& PortalSimulator::select_engine(ReaderRuntime& rt, double t_s) {
  if (rt.session_engines.empty()) return rt.engine;
  const std::size_t k = rt.session_engines.size();
  if (rt.config.strategy.interleaved) {
    return rt.session_engines[rt.round_index % k];
  }
  // Sequential: the pass is partitioned into K equal time segments, one
  // session each — session k's flags age (S1 decays) while k+1 runs.
  const double span = config_.end_time_s - config_.start_time_s;
  const double frac = span > 0.0 ? (t_s - config_.start_time_s) / span : 0.0;
  auto idx = static_cast<std::size_t>(std::max(frac, 0.0) * static_cast<double>(k));
  return rt.session_engines[std::min(idx, k - 1)];
}

double PortalSimulator::sample_shadow(std::size_t antenna, std::size_t tag_index,
                                      const Vec3& position, Rng& rng) {
  if (config_.shadow_sigma_db <= 0.0) return 0.0;
  ShadowState& st = shadow_[antenna][tag_index];
  if (!st.initialized) {
    st.value_db = rng.gaussian(0.0, config_.shadow_sigma_db);
    st.initialized = true;
  } else if (config_.shadow_coherence_m <= 0.0) {
    st.value_db = rng.gaussian(0.0, config_.shadow_sigma_db);
  } else {
    // Spatial decorrelation: a static tag keeps its realization; a moving
    // one walks through the fade pattern.
    const double moved = position.distance_to(st.last_position);
    const double rho = std::exp(-moved / config_.shadow_coherence_m);
    st.value_db = rho * st.value_db +
                  std::sqrt(std::max(1.0 - rho * rho, 0.0)) *
                      rng.gaussian(0.0, config_.shadow_sigma_db);
  }
  st.last_position = position;
  return st.value_db;
}

void PortalSimulator::reset_pass_state(Rng& rng) {
  shadow_.assign(scene_.antennas.size(), std::vector<ShadowState>(tags_.size()));
  pass_offset_db_.assign(tags_.size(), 0.0);
  for (double& offset : pass_offset_db_) {
    if (config_.pass_sigma_db > 0.0) {
      offset = rng.gaussian(0.0, config_.pass_sigma_db);
    }
    if (rng.bernoulli(config_.pass_outage_probability)) {
      offset -= config_.pass_outage_db;
    }
  }
}

std::vector<gen2::TagLink> PortalSimulator::build_links(
    const ReaderRuntime& rt, std::size_t antenna, double t_s, Rng& rng,
    std::vector<gen2::TagState>& states, double extra_loss_db) {
  const rf::LinkBudget budget(rt.config.radio);
  std::vector<gen2::TagLink> links(tags_.size());
  // One batch evaluation for the whole round: tags_ is scene.all_tags(),
  // the flat order evaluate_all produces. The kernel also hands back the
  // per-tag world positions, saving the shadow sampler its own pose
  // derivations (bit-identical to Entity::tag_position by contract).
  {
    const obs::prof::ScopedPhase phase(obs::prof::Phase::kPathEval);
    evaluator_.evaluate_all(antenna, t_s, terms_scratch_);
  }
  const std::vector<Vec3>& tag_positions = evaluator_.tag_positions();
  for (std::size_t i = 0; i < tags_.size(); ++i) {
    const rf::PathTerms& terms = terms_scratch_[i];
    const rf::TagDesign& design =
        scene_.entities[tags_[i].entity].tags()[tags_[i].tag].mount.design;
    const bool active = design.type == rf::TagType::ActiveBeacon;
    const rf::LinkResult fwd =
        active ? budget.forward_active(terms, design.active_rx_sensitivity)
               : budget.forward(terms);
    const rf::LinkResult rev = active
                                   ? budget.reverse_active(terms, design.active_tx_power)
                                   : budget.reverse(terms, fwd.received);

    // One shadowing realization per (antenna, tag) path, correlated in
    // space, plus the tag's per-pass systematic offset; both link
    // directions see the same obstacles.
    const double shadow =
        sample_shadow(antenna, i, tag_positions[i], rng) + pass_offset_db_[i] -
        extra_loss_db;
    const bool powered = fwd.margin.value() + shadow > 0.0;
    states[i].set_powered(powered, t_s);

    gen2::TagLink& link = links[i];
    link.powered = powered;
    link.rx_power = rev.received + Decibel(shadow);
    link.reply_decode_probability =
        exceed_probability(rev.margin.value() + shadow, config_.fast_sigma_db);
  }
  return links;
}

void PortalSimulator::run_reader_round(std::size_t r, EventLog& log, Rng& rng) {
  ReaderRuntime& rt = readers_[r];
  ReaderRunStats& rstats = stats_.per_reader[r];

  // Crashed reader: no carrier, no rounds. Jump the clock to the restart
  // and resume with a reset Q (a rebooting reader loses its Qfp state).
  if (fault_schedule_.reader_down(r, rt.clock_s)) {
    const double up = fault_schedule_.reader_up_after(r, rt.clock_s);
    ++rstats.crashes;
    rstats.downtime_s += up - rt.clock_s;
    if (obs::hooks_enabled()) {
      portal_metrics().crashes.add(1);
      portal_metrics().downtime_s.add(up - rt.clock_s);
      reader_hooks(r).crashes->add(1);
    }
    rt.clock_s = up;
    rt.engine.reset_q();
    for (auto& e : rt.session_engines) e.reset_q();
    return;
  }

  const double t = rt.clock_s;
  const std::size_t antenna = rt.mux.active_at(t - config_.start_time_s);

  // A dead cable absorbs the round: the mux dwells on the port anyway
  // (the reader has no reflectometer), so the time is spent but no tag
  // powers up. Jamming bursts cost margin instead of the whole round.
  double extra_loss_db = fault_schedule_.jamming_loss_db(t);
  if (extra_loss_db > 0.0) ++rstats.jammed_rounds;
  if (fault_schedule_.antenna_dead(antenna)) {
    extra_loss_db += 1000.0;
    ++rstats.dead_antenna_rounds;
  }

  auto links = build_links(rt, antenna, t, rng, rt.tag_states, extra_loss_db);
  gen2::InventoryEngine& engine = select_engine(rt, t);
  ++rt.round_index;
  gen2::InventoryRoundResult round;
  {
    const obs::prof::ScopedPhase phase(obs::prof::Phase::kGen2Inventory);
    round = engine.run_round(rt.tag_states, links, t, rng);
  }

  {
    const obs::prof::ScopedPhase phase(obs::prof::Phase::kEventLogAppend);
    const auto session = static_cast<std::uint8_t>(engine.config().session);
    for (std::size_t idx : round.singulated) {
      ReadEvent ev;
      ev.tag = scene_.entities[tags_[idx].entity].tags()[tags_[idx].tag].id;
      ev.time_s = t + round.duration_s;  // Reported at end of round, as real readers do.
      ev.reader_index = r;
      ev.antenna_index = antenna;
      ev.rssi = links[idx].rx_power;
      ev.session = session;
      log.push_back(ev);
    }
  }

  if (obs::hooks_enabled()) {
    PortalMetrics& m = portal_metrics();
    const ReaderHooks& rh = reader_hooks(r);
    m.rounds.add(1);
    rh.rounds->add(1);
    m.read_events.add(round.singulated.size());
    rh.read_events->add(round.singulated.size());
    if (fault_schedule_.jamming_loss_db(t) > 0.0) {
      m.jammed_rounds.add(1);
      rh.jammed_rounds->add(1);
    }
    if (fault_schedule_.antenna_dead(antenna)) {
      m.dead_antenna_rounds.add(1);
      rh.dead_antenna_rounds->add(1);
    }
  }

  ++stats_.rounds;
  stats_.total_slots += round.total_slots;
  stats_.collision_slots += round.collision_slots;
  stats_.success_slots += round.success_slots;
  stats_.busy_time_s += round.duration_s;
  ++rstats.rounds;
  rstats.total_slots += round.total_slots;
  rstats.collision_slots += round.collision_slots;
  rstats.success_slots += round.success_slots;
  rstats.busy_time_s += round.duration_s;
  rt.clock_s += round.duration_s;
}

namespace {
/// Label for forking the fault-schedule stream off the run RNG: keeps the
/// schedule a pure function of the run seed without advancing the event
/// stream, so all-off fault configs stay byte-identical to the pre-fault
/// simulator.
constexpr std::uint64_t kFaultStreamLabel = 0xFA1757ULL;
}  // namespace

EventLog PortalSimulator::run(Rng& rng) {
  const obs::TraceSpan span("sys.portal.run");
  const obs::prof::ScopedPhase phase(obs::prof::Phase::kPortalSim);
  if (obs::hooks_enabled()) portal_metrics().passes.add(1);
  stats_ = PortalRunStats{};
  stats_.per_reader.resize(readers_.size());
  Rng fault_rng = rng.fork(kFaultStreamLabel);
  fault_schedule_ =
      fault::FaultSchedule::sample(config_.faults, readers_.size(),
                                   scene_.antennas.size(), config_.start_time_s,
                                   config_.end_time_s, fault_rng);
  reset_pass_state(rng);
  for (auto& rt : readers_) {
    rt.clock_s = config_.start_time_s;
    rt.engine.reset_q();
    for (auto& e : rt.session_engines) e.reset_q();
    rt.round_index = 0;
    std::fill(rt.tag_states.begin(), rt.tag_states.end(), gen2::TagState{});
  }

  EventLog log;
  while (true) {
    // Advance the reader whose clock is furthest behind (concurrent rounds).
    std::size_t next = 0;
    for (std::size_t r = 1; r < readers_.size(); ++r) {
      if (readers_[r].clock_s < readers_[next].clock_s) next = r;
    }
    if (readers_[next].clock_s >= config_.end_time_s) break;
    run_reader_round(next, log, rng);
  }

  std::sort(log.begin(), log.end(),
            [](const ReadEvent& a, const ReadEvent& b) { return a.time_s < b.time_s; });
  return log;
}

obs::PassObservation PortalSimulator::pass_observation(const EventLog& log) const {
  obs::PassObservation out;
  out.window_begin_s = config_.start_time_s;
  out.window_end_s = config_.end_time_s;
  out.objects_total = tags_.size();
  out.readers.resize(readers_.size());
  for (std::size_t r = 0; r < readers_.size() && r < stats_.per_reader.size(); ++r) {
    out.readers[r].rounds = stats_.per_reader[r].rounds;
  }
  std::unordered_set<scene::TagId> all;
  std::vector<std::unordered_set<scene::TagId>> per_reader(readers_.size());
  for (const ReadEvent& ev : log) {
    all.insert(ev.tag);
    if (ev.reader_index < per_reader.size()) per_reader[ev.reader_index].insert(ev.tag);
  }
  out.objects_identified = all.size();
  for (std::size_t r = 0; r < per_reader.size(); ++r) {
    out.readers[r].objects_seen = per_reader[r].size();
  }
  return out;
}

EventLog PortalSimulator::run_single_round(double t_s, Rng& rng) {
  const obs::TraceSpan span("sys.portal.run_single_round");
  stats_ = PortalRunStats{};
  stats_.per_reader.resize(readers_.size());
  Rng fault_rng = rng.fork(kFaultStreamLabel);
  fault_schedule_ = fault::FaultSchedule::sample(
      config_.faults, readers_.size(), scene_.antennas.size(), t_s,
      t_s + config_.end_time_s - config_.start_time_s, fault_rng);
  reset_pass_state(rng);
  EventLog log;
  for (std::size_t r = 0; r < readers_.size(); ++r) {
    readers_[r].clock_s = t_s;
    readers_[r].engine.reset_q();
    for (auto& e : readers_[r].session_engines) e.reset_q();
    readers_[r].round_index = 0;
    std::fill(readers_[r].tag_states.begin(), readers_[r].tag_states.end(),
              gen2::TagState{});
    run_reader_round(r, log, rng);
  }
  std::sort(log.begin(), log.end(),
            [](const ReadEvent& a, const ReadEvent& b) { return a.time_s < b.time_s; });
  return log;
}

}  // namespace rfidsim::sys
