#include "system/uploader.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rfidsim::sys {

namespace {

/// Upload-channel registry hooks. The per-instance UploadStats struct
/// remains the per-uploader view (its accessors are unchanged); these are
/// the cross-instance totals the old ad-hoc fields could never give —
/// before, retry/backoff churn was invisible unless the caller remembered
/// to poll stats() on every uploader it created.
struct UploaderMetrics {
  obs::Counter& batches = obs::counter("sys.uploader.batches");
  obs::Counter& attempts = obs::counter("sys.uploader.attempts");
  obs::Counter& retries = obs::counter("sys.uploader.retries");
  obs::Counter& batches_lost = obs::counter("sys.uploader.batches_lost");
  obs::Counter& events_delivered = obs::counter("sys.uploader.events_delivered");
  obs::Counter& events_lost = obs::counter("sys.uploader.events_lost");
  obs::Gauge& backoff_s = obs::gauge("sys.uploader.backoff_seconds");
};

UploaderMetrics& uploader_metrics() {
  static UploaderMetrics m;
  return m;
}

}  // namespace

EventUploader::EventUploader(UploaderConfig config) : config_(config) {
  require(config_.batch_size > 0, "EventUploader: batch size must be positive");
  require(config_.loss_probability >= 0.0 && config_.loss_probability < 1.0,
          "EventUploader: loss probability must be in [0, 1)");
  require(config_.initial_backoff_s >= 0.0,
          "EventUploader: backoff must be non-negative");
  require(config_.backoff_multiplier >= 1.0,
          "EventUploader: backoff multiplier must be >= 1");
}

EventLog EventUploader::upload(const EventLog& log, Rng& rng) {
  EventLog delivered;
  delivered.reserve(log.size());
  for (const DeliveredBatch& batch : upload_batches(log, rng)) {
    delivered.insert(delivered.end(), batch.events.begin(), batch.events.end());
  }
  return delivered;
}

std::vector<DeliveredBatch> EventUploader::upload_batches(const EventLog& log,
                                                          Rng& rng) {
  const obs::TraceSpan span("sys.uploader.upload");
  const UploadStats before = stats_;
  std::vector<DeliveredBatch> delivered;
  // The channel is serial: a batch cannot depart while the previous one is
  // still retrying, so backoff pushes every later batch's arrival back too.
  double channel_free_s = -std::numeric_limits<double>::infinity();

  for (std::size_t begin = 0; begin < log.size(); begin += config_.batch_size) {
    const std::size_t end = std::min(begin + config_.batch_size, log.size());
    ++stats_.batches;
    const double sent_s = log[end - 1].time_s;  // Flush at the last read.

    bool ok = false;
    double waited_s = 0.0;
    double backoff = config_.initial_backoff_s;
    for (std::size_t attempt = 0; attempt <= config_.max_retries; ++attempt) {
      ++stats_.attempts;
      if (attempt > 0) {
        ++stats_.retries;
        stats_.backoff_delay_s += backoff;
        waited_s += backoff;
        backoff *= config_.backoff_multiplier;
      }
      if (!rng.bernoulli(config_.loss_probability)) {
        ok = true;
        break;
      }
    }

    const double departure_s = std::max(channel_free_s, sent_s);
    channel_free_s = departure_s + waited_s;  // Lost batches also hold the line.
    if (ok) {
      DeliveredBatch batch;
      batch.sent_time_s = sent_s;
      batch.arrival_time_s = channel_free_s;
      batch.events.assign(log.begin() + static_cast<std::ptrdiff_t>(begin),
                          log.begin() + static_cast<std::ptrdiff_t>(end));
      delivered.push_back(std::move(batch));
      stats_.events_delivered += end - begin;
    } else {
      ++stats_.batches_lost;
      stats_.events_lost += end - begin;
    }
  }

  if (obs::hooks_enabled()) {
    UploaderMetrics& m = uploader_metrics();
    m.batches.add(stats_.batches - before.batches);
    m.attempts.add(stats_.attempts - before.attempts);
    m.retries.add(stats_.retries - before.retries);
    m.batches_lost.add(stats_.batches_lost - before.batches_lost);
    m.events_delivered.add(stats_.events_delivered - before.events_delivered);
    m.events_lost.add(stats_.events_lost - before.events_lost);
    m.backoff_s.add(stats_.backoff_delay_s - before.backoff_delay_s);
  }
  return delivered;
}

}  // namespace rfidsim::sys
