#include "system/uploader.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "obs/trace.hpp"
#include "wire/batch_codec.hpp"

namespace rfidsim::sys {

namespace {

/// Upload-channel registry hooks. The per-instance UploadStats struct
/// remains the per-uploader view (its accessors are unchanged); these are
/// the cross-instance totals the old ad-hoc fields could never give —
/// before, retry/backoff churn was invisible unless the caller remembered
/// to poll stats() on every uploader it created.
struct UploaderMetrics {
  obs::Counter& batches = obs::counter("sys.uploader.batches");
  obs::Counter& attempts = obs::counter("sys.uploader.attempts");
  obs::Counter& attempts_ok = obs::counter("sys.uploader.attempts",
                                           {{"result", "delivered"}});
  obs::Counter& attempts_lost = obs::counter("sys.uploader.attempts",
                                             {{"result", "lost"}});
  obs::Counter& retries = obs::counter("sys.uploader.retries");
  obs::Counter& batches_lost = obs::counter("sys.uploader.batches_lost");
  obs::Counter& giveups_retry = obs::counter("sys.uploader.giveups",
                                             {{"reason", "retry_budget"}});
  obs::Counter& giveups_nak = obs::counter("sys.uploader.giveups",
                                           {{"reason", "nak_budget"}});
  obs::Counter& events_delivered = obs::counter("sys.uploader.events_delivered");
  obs::Counter& events_lost = obs::counter("sys.uploader.events_lost");
  obs::Gauge& backoff_s = obs::gauge("sys.uploader.backoff_seconds");
};

UploaderMetrics& uploader_metrics() {
  static UploaderMetrics m;
  return m;
}

/// Bounded exponential backoff with optional seeded jitter. One instance
/// per batch: every retry/retransmit waits the current value (cap + jitter
/// applied) and escalates.
struct Backoff {
  double next_s;
  const UploaderConfig& config;
  explicit Backoff(const UploaderConfig& c) : next_s(c.initial_backoff_s), config(c) {}

  double take(Rng& rng) {
    double wait = std::min(next_s, config.max_backoff_s);
    if (config.jitter_fraction > 0.0) {
      wait += rng.uniform(0.0, config.jitter_fraction * wait);
    }
    next_s *= config.backoff_multiplier;
    return wait;
  }
};

}  // namespace

EventUploader::EventUploader(UploaderConfig config) : config_(config) {
  require(config_.batch_size > 0, "EventUploader: batch size must be positive");
  require(config_.loss_probability >= 0.0 && config_.loss_probability < 1.0,
          "EventUploader: loss probability must be in [0, 1)");
  require(config_.initial_backoff_s >= 0.0,
          "EventUploader: backoff must be non-negative");
  require(config_.backoff_multiplier >= 1.0,
          "EventUploader: backoff multiplier must be >= 1");
  require(config_.max_backoff_s >= 0.0,
          "EventUploader: max backoff must be non-negative");
  require(config_.jitter_fraction >= 0.0 && config_.jitter_fraction <= 1.0,
          "EventUploader: jitter fraction must be in [0, 1]");
}

EventLog EventUploader::upload(const EventLog& log, Rng& rng) {
  EventLog delivered;
  delivered.reserve(log.size());
  for (const DeliveredBatch& batch : upload_batches(log, rng)) {
    delivered.insert(delivered.end(), batch.events.begin(), batch.events.end());
  }
  return delivered;
}

std::vector<DeliveredBatch> EventUploader::upload_batches(const EventLog& log,
                                                          Rng& rng) {
  const obs::TraceSpan span("sys.uploader.upload");
  const UploadStats before = stats_;
  std::size_t attempts_ok = 0, attempts_lost = 0, giveups = 0;
  std::vector<DeliveredBatch> delivered;
  // The channel is serial: a batch cannot depart while the previous one is
  // still retrying, so backoff pushes every later batch's arrival back too.
  double channel_free_s = -std::numeric_limits<double>::infinity();

  for (std::size_t begin = 0; begin < log.size(); begin += config_.batch_size) {
    const std::size_t end = std::min(begin + config_.batch_size, log.size());
    ++stats_.batches;
    const double sent_s = log[end - 1].time_s;  // Flush at the last read.
    // Ids are minted unconditionally (they are plumbing, not telemetry);
    // only the hop records below gate on obs.
    const std::uint64_t batch_id =
        obs::provenance_batch_id(obs::kNoFacility, batch_sequence_++);
    if (obs::hooks_enabled()) {
      obs::provenance_log().record({batch_id, obs::BatchHop::kEnqueued,
                                    obs::kNoFacility, end - begin, sent_s});
    }

    bool ok = false;
    double waited_s = 0.0;
    Backoff backoff(config_);
    for (std::size_t attempt = 0; attempt <= config_.max_retries; ++attempt) {
      ++stats_.attempts;
      if (attempt > 0) {
        ++stats_.retries;
        const double wait = backoff.take(rng);
        stats_.backoff_delay_s += wait;
        waited_s += wait;
      }
      if (!rng.bernoulli(config_.loss_probability)) {
        ok = true;
        ++attempts_ok;
        break;
      }
      ++attempts_lost;
    }

    const double departure_s = std::max(channel_free_s, sent_s);
    channel_free_s = departure_s + waited_s;  // Lost batches also hold the line.
    if (ok) {
      DeliveredBatch batch;
      batch.sent_time_s = sent_s;
      batch.arrival_time_s = channel_free_s;
      batch.batch_id = batch_id;
      batch.events.assign(log.begin() + static_cast<std::ptrdiff_t>(begin),
                          log.begin() + static_cast<std::ptrdiff_t>(end));
      delivered.push_back(std::move(batch));
      stats_.events_delivered += end - begin;
      if (obs::hooks_enabled()) {
        obs::provenance_log().record({batch_id, obs::BatchHop::kDelivered,
                                      obs::kNoFacility, end - begin,
                                      channel_free_s});
      }
    } else {
      ++stats_.batches_lost;
      ++giveups;
      stats_.events_lost += end - begin;
      if (obs::hooks_enabled()) {
        obs::provenance_log().record({batch_id, obs::BatchHop::kLost,
                                      obs::kNoFacility, end - begin, sent_s});
      }
    }
  }

  if (obs::hooks_enabled()) {
    UploaderMetrics& m = uploader_metrics();
    m.batches.add(stats_.batches - before.batches);
    m.attempts.add(stats_.attempts - before.attempts);
    m.attempts_ok.add(attempts_ok);
    m.attempts_lost.add(attempts_lost);
    m.retries.add(stats_.retries - before.retries);
    m.batches_lost.add(stats_.batches_lost - before.batches_lost);
    m.giveups_retry.add(giveups);
    m.events_delivered.add(stats_.events_delivered - before.events_delivered);
    m.events_lost.add(stats_.events_lost - before.events_lost);
    m.backoff_s.add(stats_.backoff_delay_s - before.backoff_delay_s);
  }
  return delivered;
}

std::vector<DeliveredBatch> EventUploader::upload_wire(
    const EventLog& log, std::uint32_t facility, Rng& rng,
    fault::WireCorruptor* corruptor) {
  const obs::TraceSpan span("sys.uploader.upload_wire");
  const UploadStats before = stats_;
  const WireUploadStats wire_before = wire_stats_;
  std::size_t attempts_ok = 0, attempts_lost = 0;
  std::size_t giveups_retry = 0, giveups_nak = 0;
  const bool channel_dirty = corruptor != nullptr && !corruptor->identity();
  std::vector<DeliveredBatch> delivered;
  double channel_free_s = -std::numeric_limits<double>::infinity();

  for (std::size_t begin = 0; begin < log.size(); begin += config_.batch_size) {
    const std::size_t end = std::min(begin + config_.batch_size, log.size());
    ++stats_.batches;
    const double sent_s = log[end - 1].time_s;
    const std::uint64_t batch_id =
        obs::provenance_batch_id(facility, batch_sequence_++);
    if (obs::hooks_enabled()) {
      obs::provenance_log().record({batch_id, obs::BatchHop::kEnqueued, facility,
                                    end - begin, sent_s});
    }

    // Stage 1 — link: same loss/backoff model as upload_batches, same
    // draw sequence (the wire hop below must not perturb clean-channel
    // determinism).
    bool link_ok = false;
    double waited_s = 0.0;
    Backoff backoff(config_);
    for (std::size_t attempt = 0; attempt <= config_.max_retries; ++attempt) {
      ++stats_.attempts;
      if (attempt > 0) {
        ++stats_.retries;
        const double wait = backoff.take(rng);
        stats_.backoff_delay_s += wait;
        waited_s += wait;
      }
      if (!rng.bernoulli(config_.loss_probability)) {
        link_ok = true;
        ++attempts_ok;
        break;
      }
      ++attempts_lost;
    }

    // Stage 2 — wire: frame the batch, let the channel damage bits, decode
    // strictly; every classified failure is a NAK and a retransmission.
    bool wire_ok = false;
    std::size_t naks = 0;
    wire::EventBatch sent_batch;
    if (link_ok) {
      sent_batch.facility = facility;
      sent_batch.sent_time_s = sent_s;
      sent_batch.arrival_time_s = 0.0;  // Stamped by the receiver (below).
      sent_batch.events.assign(log.begin() + static_cast<std::ptrdiff_t>(begin),
                               log.begin() + static_cast<std::ptrdiff_t>(end));
      const std::vector<std::uint8_t> frame =
          wire::encode_event_batch_frame(sent_batch);
      if (obs::hooks_enabled()) {
        obs::provenance_log().record({batch_id, obs::BatchHop::kEncoded, facility,
                                      frame.size(), sent_s});
      }

      wire::EventBatch received;
      for (std::size_t attempt = 0; attempt <= config_.max_nak_retransmits;
           ++attempt) {
        ++wire_stats_.frames_sent;
        wire_stats_.bytes_sent += frame.size();
        if (attempt > 0) {
          ++wire_stats_.nak_retransmits;
          const double wait = backoff.take(rng);
          stats_.backoff_delay_s += wait;
          waited_s += wait;
        }
        // Clean channel: decode the canonical frame without copying.
        std::vector<std::uint8_t> damaged;
        const std::vector<std::uint8_t>* received_bytes = &frame;
        if (channel_dirty) {
          damaged = frame;
          corruptor->corrupt_frame(damaged, rng);
          received_bytes = &damaged;
        }
        const wire::DecodeResult result = wire::next_frame(*received_bytes, 0);
        if (!result.ok) {
          ++wire_stats_.corrupt_frames;
          ++wire_stats_.corrupt_by_kind[static_cast<std::size_t>(result.error)];
          ++naks;
          if (obs::hooks_enabled()) {
            obs::provenance_log().record(
                {batch_id, obs::BatchHop::kNak, facility, naks, sent_s});
          }
          continue;
        }
        std::optional<wire::EventBatch> decoded =
            wire::decode_event_batch(result.frame);
        if (!decoded.has_value()) {
          ++wire_stats_.corrupt_frames;
          ++wire_stats_.corrupt_by_kind[static_cast<std::size_t>(
              wire::DecodeErrorKind::kBadPayload)];
          ++naks;
          if (obs::hooks_enabled()) {
            obs::provenance_log().record(
                {batch_id, obs::BatchHop::kNak, facility, naks, sent_s});
          }
          continue;
        }
        if (!(*decoded == sent_batch)) {
          // CRC collision: the receiver cannot see this — the simulator
          // tallies it as ground truth and still delivers what decoded,
          // because that is exactly what a real backend would store.
          ++wire_stats_.undetected_corruptions;
        }
        received = std::move(*decoded);
        wire_ok = true;
        break;
      }
      if (wire_ok && naks > 0) ++wire_stats_.batches_recovered;
      if (wire_ok) {
        const double departure_s = std::max(channel_free_s, sent_s);
        channel_free_s = departure_s + waited_s;
        DeliveredBatch batch;
        batch.sent_time_s = received.sent_time_s;
        batch.arrival_time_s = channel_free_s;
        batch.nak_retransmits = naks;
        batch.batch_id = batch_id;
        batch.events = std::move(received.events);
        stats_.events_delivered += batch.events.size();
        if (obs::hooks_enabled()) {
          obs::provenance_log().record({batch_id, obs::BatchHop::kDelivered,
                                        facility, batch.events.size(),
                                        channel_free_s});
        }
        delivered.push_back(std::move(batch));
        continue;
      }
    }

    // Not delivered: the channel still burned the wait time, and the
    // events are gone either way — but the *cause* is typed.
    const double departure_s = std::max(channel_free_s, sent_s);
    channel_free_s = departure_s + waited_s;
    ++stats_.batches_lost;
    stats_.events_lost += end - begin;
    if (link_ok) {
      ++wire_stats_.batches_quarantined;
      wire_stats_.events_quarantined += end - begin;
      ++giveups_nak;
      if (obs::hooks_enabled()) {
        obs::provenance_log().record({batch_id, obs::BatchHop::kQuarantined,
                                      facility, end - begin, sent_s});
      }
    } else {
      ++giveups_retry;
      if (obs::hooks_enabled()) {
        obs::provenance_log().record({batch_id, obs::BatchHop::kLost, facility,
                                      end - begin, sent_s});
      }
    }
  }

  if (obs::hooks_enabled()) {
    UploaderMetrics& m = uploader_metrics();
    m.batches.add(stats_.batches - before.batches);
    m.attempts.add(stats_.attempts - before.attempts);
    m.attempts_ok.add(attempts_ok);
    m.attempts_lost.add(attempts_lost);
    m.retries.add(stats_.retries - before.retries);
    m.batches_lost.add(stats_.batches_lost - before.batches_lost);
    m.giveups_retry.add(giveups_retry);
    m.giveups_nak.add(giveups_nak);
    m.events_delivered.add(stats_.events_delivered - before.events_delivered);
    m.events_lost.add(stats_.events_lost - before.events_lost);
    m.backoff_s.add(stats_.backoff_delay_s - before.backoff_delay_s);
    obs::counter("sys.uploader.wire_frames").add(wire_stats_.frames_sent -
                                                 wire_before.frames_sent);
    obs::counter("sys.uploader.wire_corrupt_frames")
        .add(wire_stats_.corrupt_frames - wire_before.corrupt_frames);
    obs::counter("sys.uploader.wire_retransmits")
        .add(wire_stats_.nak_retransmits - wire_before.nak_retransmits);
    obs::counter("sys.uploader.wire_quarantined")
        .add(wire_stats_.batches_quarantined - wire_before.batches_quarantined);
  }
  return delivered;
}

}  // namespace rfidsim::sys
