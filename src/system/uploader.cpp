#include "system/uploader.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace rfidsim::sys {

EventUploader::EventUploader(UploaderConfig config) : config_(config) {
  require(config_.batch_size > 0, "EventUploader: batch size must be positive");
  require(config_.loss_probability >= 0.0 && config_.loss_probability < 1.0,
          "EventUploader: loss probability must be in [0, 1)");
  require(config_.initial_backoff_s >= 0.0,
          "EventUploader: backoff must be non-negative");
  require(config_.backoff_multiplier >= 1.0,
          "EventUploader: backoff multiplier must be >= 1");
}

EventLog EventUploader::upload(const EventLog& log, Rng& rng) {
  EventLog delivered;
  delivered.reserve(log.size());

  for (std::size_t begin = 0; begin < log.size(); begin += config_.batch_size) {
    const std::size_t end = std::min(begin + config_.batch_size, log.size());
    ++stats_.batches;

    bool ok = false;
    double backoff = config_.initial_backoff_s;
    for (std::size_t attempt = 0; attempt <= config_.max_retries; ++attempt) {
      ++stats_.attempts;
      if (attempt > 0) {
        ++stats_.retries;
        stats_.backoff_delay_s += backoff;
        backoff *= config_.backoff_multiplier;
      }
      if (!rng.bernoulli(config_.loss_probability)) {
        ok = true;
        break;
      }
    }

    if (ok) {
      delivered.insert(delivered.end(), log.begin() + static_cast<std::ptrdiff_t>(begin),
                       log.begin() + static_cast<std::ptrdiff_t>(end));
      stats_.events_delivered += end - begin;
    } else {
      ++stats_.batches_lost;
      stats_.events_lost += end - begin;
    }
  }
  return delivered;
}

}  // namespace rfidsim::sys
