// Reader device configuration.
//
// A reader drives 1-4 antennas through a time-division multiplexer —
// "virtually all readers have built-in support for assigning two or more
// antennas to a single zone" (paper §4) — and runs the Gen 2 inventory
// engine on whichever antenna currently holds the RF switch.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "gen2/inventory.hpp"
#include "rf/link_budget.hpp"

namespace rfidsim::sys {

/// Which inventory strategy a reader runs over a pass.
enum class InventoryMode {
  /// Every round uses `ReaderConfig::inventory` verbatim — the pre-
  /// multi-session behaviour, byte-identical by construction (the single
  /// engine is the same object on the same code path).
  kSingleSession,
  /// Rounds are spread over `InventoryStrategy::sessions`: K independent
  /// per-session passes against one shared tag population, the
  /// gen2::reliable redundancy axis. Each read event carries its session.
  kMultiSession,
};

/// Multi-session scheduling knobs (ignored under kSingleSession).
struct InventoryStrategy {
  InventoryMode mode = InventoryMode::kSingleSession;
  /// Sessions the reader rotates through; K = sessions.size(). The
  /// session/target of `ReaderConfig::inventory` is overridden per pass.
  std::vector<gen2::Session> sessions = {gen2::Session::S1, gen2::Session::S2,
                                         gen2::Session::S3};
  /// true: rotate sessions round-by-round (interleaved — each session's
  /// rounds spread across the whole dwell). false: partition the pass
  /// into K equal time segments, one session each (sequential — session
  /// k's flags age while k+1 runs).
  bool interleaved = true;
};

/// Static configuration of one reader.
struct ReaderConfig {
  /// Scene antenna indices this reader drives (TDMA round-robin).
  std::vector<std::size_t> antenna_indices;
  rf::RadioParams radio{};
  gen2::InventoryConfig inventory{};
  InventoryStrategy strategy{};
  /// RF channel this reader occupies (see gen2::ReaderInterference).
  int channel = 0;
  bool dense_reader_mode = false;
  /// How long the mux stays on one antenna before switching. One inventory
  /// round always completes on a single antenna; the dwell governs the
  /// round-to-round alternation cadence.
  double antenna_dwell_s = 0.10;
};

/// Round-robin antenna multiplexer: which antenna is active at time t.
class AntennaMux {
 public:
  AntennaMux(std::vector<std::size_t> antenna_indices, double dwell_s)
      : antennas_(std::move(antenna_indices)), dwell_s_(dwell_s) {
    require(!antennas_.empty(), "AntennaMux: reader needs at least one antenna");
    require(dwell_s_ > 0.0, "AntennaMux: dwell must be positive");
  }

  /// Scene antenna index active at time `t_s` (t < 0 maps to the first).
  std::size_t active_at(double t_s) const {
    if (antennas_.size() == 1 || t_s <= 0.0) return antennas_.front();
    const auto step = static_cast<std::size_t>(t_s / dwell_s_);
    return antennas_[step % antennas_.size()];
  }

  std::size_t antenna_count() const { return antennas_.size(); }
  const std::vector<std::size_t>& antennas() const { return antennas_; }

 private:
  std::vector<std::size_t> antennas_;
  double dwell_s_;
};

}  // namespace rfidsim::sys
