// Buffered event upload: reader buffer -> backend over a lossy link.
//
// Readers in buffered continuous mode batch their reads and push them
// upstream over whatever the site wired in — serial, flaky WiFi, a cell
// modem on a dock door. This models that hop: batches are lost with a
// configurable probability, retried with exponential backoff, and dropped
// for good once the retry budget is exhausted (the reader's ring buffer
// has wrapped by then). Downstream, track::ResilientIngest treats the
// result as just another degraded feed.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "system/events.hpp"

namespace rfidsim::sys {

/// Upload-channel configuration.
struct UploaderConfig {
  /// Events per upload batch (the reader's flush quantum).
  std::size_t batch_size = 32;
  /// Probability one transmission attempt is lost in transit.
  double loss_probability = 0.0;
  /// Retries after the first failed attempt before the batch is dropped.
  std::size_t max_retries = 4;
  /// Backoff before the first retry; doubles per subsequent retry.
  double initial_backoff_s = 0.05;
  double backoff_multiplier = 2.0;
};

/// One batch as the backend received it. `sent_time_s` is the reader's
/// flush time (the batch's last event time); `arrival_time_s` is when the
/// backend actually got it: the flush time, any head-of-line wait behind
/// the previous batch still retrying on the serial channel, plus this
/// batch's own retry backoff. Transmission itself is modelled as instant —
/// only backoff consumes channel time.
struct DeliveredBatch {
  EventLog events;
  double sent_time_s = 0.0;
  double arrival_time_s = 0.0;
};

/// What the channel did to one log.
struct UploadStats {
  std::size_t batches = 0;
  std::size_t attempts = 0;        ///< Transmissions incl. retries.
  std::size_t retries = 0;
  std::size_t batches_lost = 0;    ///< Dropped after exhausting retries.
  std::size_t events_delivered = 0;
  std::size_t events_lost = 0;
  double backoff_delay_s = 0.0;    ///< Total backoff the retries waited out.
};

/// Pushes event logs through the lossy upload hop.
class EventUploader {
 public:
  explicit EventUploader(UploaderConfig config);

  /// Uploads `log` batch by batch; returns what the backend received, in
  /// delivery order (batch order is preserved — retries delay, they do
  /// not overtake). Deterministic given `rng`'s state. Stats accumulate
  /// across calls until reset().
  EventLog upload(const EventLog& log, Rng& rng);

  /// Like upload(), but keeps the batch structure and timing: each
  /// delivered batch carries its flush time and its backend arrival time,
  /// so downstream consumers see retry backoff as *latency*, not just a
  /// stats() tally. Draws from `rng` and accumulates stats exactly as
  /// upload() does (upload() is this call with the timing discarded).
  std::vector<DeliveredBatch> upload_batches(const EventLog& log, Rng& rng);

  const UploadStats& stats() const { return stats_; }
  void reset() { stats_ = UploadStats{}; }

 private:
  UploaderConfig config_;
  UploadStats stats_;
};

}  // namespace rfidsim::sys
