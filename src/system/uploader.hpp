// Buffered event upload: reader buffer -> backend over a lossy link.
//
// Readers in buffered continuous mode batch their reads and push them
// upstream over whatever the site wired in — serial, flaky WiFi, a cell
// modem on a dock door. This models that hop at two fidelities:
//
//   upload_batches()  link-level loss only: batches are lost with a
//                     configurable probability, retried with *bounded*
//                     exponential backoff (cap + deterministic seeded
//                     jitter), and dropped for good once the retry budget
//                     is exhausted (the reader's ring buffer has wrapped
//                     by then).
//   upload_wire()     the same link, but batches travel as checksummed
//                     binary frames (wire::encode_event_batch_frame) and
//                     the channel damages *bits*, not rows. The receiver
//                     decodes strictly; any classified failure (bad CRC,
//                     truncation, bad magic, unknown version...) is a NAK
//                     and the uploader retransmits under its own budget.
//                     Corruption is therefore detected and quarantined,
//                     never silently parsed — the end-to-end integrity
//                     half of the fleet durability contract.
//
// Downstream, track::ResilientIngest treats the result as just another
// degraded feed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "fault/wire_corruptor.hpp"
#include "system/events.hpp"
#include "wire/wire.hpp"

namespace rfidsim::sys {

/// Upload-channel configuration.
struct UploaderConfig {
  /// Events per upload batch (the reader's flush quantum).
  std::size_t batch_size = 32;
  /// Probability one transmission attempt is lost in transit.
  double loss_probability = 0.0;
  /// Retries after the first failed attempt before the batch is dropped.
  std::size_t max_retries = 4;
  /// Backoff before the first retry; multiplies per subsequent retry,
  /// capped at max_backoff_s (bounded exponential — the backoff can never
  /// run away however deep the retry budget goes).
  double initial_backoff_s = 0.05;
  double backoff_multiplier = 2.0;
  double max_backoff_s = 10.0;
  /// Fraction of each backoff added as uniform jitter in
  /// [0, jitter_fraction * backoff). Drawn from the caller's Rng, so it is
  /// seeded and deterministic; 0 draws nothing (decorrelating retries
  /// across readers costs determinism nothing here).
  double jitter_fraction = 0.0;
  /// Wire path only: retransmissions after a NAK (corrupt frame detected
  /// by the receiver) before the batch is quarantined.
  std::size_t max_nak_retransmits = 6;
};

/// One batch as the backend received it. `sent_time_s` is the reader's
/// flush time (the batch's last event time); `arrival_time_s` is when the
/// backend actually got it: the flush time, any head-of-line wait behind
/// the previous batch still retrying on the serial channel, plus this
/// batch's own retry backoff. Transmission itself is modelled as instant —
/// only backoff consumes channel time.
struct DeliveredBatch {
  EventLog events;
  double sent_time_s = 0.0;
  double arrival_time_s = 0.0;
  /// Wire path: NAK retransmissions this batch needed (0 = clean first
  /// try; > 0 = recovered from detected corruption).
  std::size_t nak_retransmits = 0;
  /// Deterministic provenance id (obs::provenance_batch_id over the
  /// facility and this uploader's batch sequence), minted whether or not
  /// obs records anything — downstream hops key their provenance records
  /// on it. Never 0 for uploader-produced batches; 0 means "no id"
  /// (hand-built batches).
  std::uint64_t batch_id = 0;
};

/// What the channel did to one log.
struct UploadStats {
  std::size_t batches = 0;
  std::size_t attempts = 0;        ///< Transmissions incl. retries.
  std::size_t retries = 0;
  std::size_t batches_lost = 0;    ///< Dropped after exhausting retries.
  std::size_t events_delivered = 0;
  std::size_t events_lost = 0;
  double backoff_delay_s = 0.0;    ///< Total backoff the retries waited out.
};

/// What the wire added on top of link loss (upload_wire only).
struct WireUploadStats {
  std::uint64_t frames_sent = 0;       ///< Frame transmissions incl. retransmits.
  std::uint64_t bytes_sent = 0;        ///< Framed bytes offered to the channel.
  std::uint64_t corrupt_frames = 0;    ///< Receiver-detected bad frames (NAKs).
  /// Detected failures by DecodeErrorKind (index = enum value).
  std::uint64_t corrupt_by_kind[7] = {};
  std::uint64_t nak_retransmits = 0;
  std::uint64_t batches_recovered = 0;   ///< Delivered after >= 1 NAK.
  std::uint64_t batches_quarantined = 0; ///< NAK budget exhausted; dropped.
  std::uint64_t events_quarantined = 0;
  /// Frames that decoded fine but differ from what was sent — a CRC-16
  /// collision. Ground truth only the simulator can see; the acceptance
  /// bar is that this stays zero.
  std::uint64_t undetected_corruptions = 0;
};

/// Pushes event logs through the lossy upload hop.
class EventUploader {
 public:
  explicit EventUploader(UploaderConfig config);

  /// Uploads `log` batch by batch; returns what the backend received, in
  /// delivery order (batch order is preserved — retries delay, they do
  /// not overtake). Deterministic given `rng`'s state. Stats accumulate
  /// across calls until reset().
  EventLog upload(const EventLog& log, Rng& rng);

  /// Like upload(), but keeps the batch structure and timing: each
  /// delivered batch carries its flush time and its backend arrival time,
  /// so downstream consumers see retry backoff as *latency*, not just a
  /// stats() tally. Draws from `rng` and accumulates stats exactly as
  /// upload() does (upload() is this call with the timing discarded).
  std::vector<DeliveredBatch> upload_batches(const EventLog& log, Rng& rng);

  /// The wire-framed hop: each link-delivered batch is encoded as a
  /// checksummed binary frame, damaged by `corruptor` (nullptr = clean
  /// channel), and strictly decoded; detected corruption NAKs and
  /// retransmits under max_nak_retransmits. Returned events are the
  /// *decoded* bytes — nothing the receiver could not have seen. With a
  /// clean or identity channel this draws from `rng` exactly as
  /// upload_batches does and returns bit-identical batches.
  std::vector<DeliveredBatch> upload_wire(const EventLog& log,
                                          std::uint32_t facility, Rng& rng,
                                          fault::WireCorruptor* corruptor);

  const UploadStats& stats() const { return stats_; }
  const WireUploadStats& wire_stats() const { return wire_stats_; }
  void reset() {
    stats_ = UploadStats{};
    wire_stats_ = WireUploadStats{};
  }

 private:
  UploaderConfig config_;
  UploadStats stats_;
  WireUploadStats wire_stats_;
  /// Batches formed over this uploader's lifetime; the provenance-id
  /// sequence. Deliberately not cleared by reset() — ids must stay unique
  /// across stats resets.
  std::uint64_t batch_sequence_ = 0;
};

}  // namespace rfidsim::sys
