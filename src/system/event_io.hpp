// Event-log serialization.
//
// Real readers hand their buffered reads to middleware as flat records;
// analysts live in CSV. These helpers round-trip sys::EventLog through the
// obvious five-column format so simulated traces can be analysed outside
// the simulator (and recorded traces replayed through the track:: tools).
//
//   time_s,tag,reader,antenna,rssi_dbm
//   1.472000,1001,0,0,-61.7
#pragma once

#include <iosfwd>
#include <string>

#include "system/events.hpp"

namespace rfidsim::sys {

/// Writes `log` as CSV (header + one row per event).
void write_csv(std::ostream& out, const EventLog& log);

/// Convenience: CSV as a string.
std::string to_csv(const EventLog& log);

/// Parses a CSV stream produced by write_csv (header required). Throws
/// ConfigError on malformed rows; tolerates trailing whitespace/newlines.
EventLog read_csv(std::istream& in);

/// Convenience: parse from a string.
EventLog from_csv(const std::string& csv);

}  // namespace rfidsim::sys
