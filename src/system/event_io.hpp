// Event-log serialization.
//
// Real readers hand their buffered reads to middleware as flat records;
// analysts live in CSV. These helpers round-trip sys::EventLog through the
// obvious five-column format so simulated traces can be analysed outside
// the simulator (and recorded traces replayed through the track:: tools).
//
//   time_s,tag,reader,antenna,rssi_dbm
//   1.472000,1001,0,0,-61.7
#pragma once

#include <iosfwd>
#include <string>

#include "system/events.hpp"

namespace rfidsim::sys {

/// Writes `log` as CSV (header + one row per event).
void write_csv(std::ostream& out, const EventLog& log);

/// Convenience: CSV as a string.
std::string to_csv(const EventLog& log);

/// How read_csv treats rows it cannot parse.
enum class ParseMode {
  /// Throw ConfigError on the first malformed row (the historical
  /// behaviour, right for trusted simulator output).
  Strict,
  /// Skip malformed rows and count them — right for logs that crossed
  /// real middleware. Rows with non-finite time/RSSI also count as bad:
  /// a NaN RSSI is sensor garbage, not a measurement.
  Lenient,
};

/// Outcome of a lenient parse.
struct ParseStats {
  std::size_t rows_ok = 0;
  std::size_t rows_bad = 0;
  /// First few row-level error messages (capped so a fully corrupt feed
  /// cannot balloon memory).
  std::vector<std::string> sample_errors;
  static constexpr std::size_t kMaxSampleErrors = 8;
};

/// Parses a CSV stream produced by write_csv (header required). Throws
/// ConfigError on malformed rows; tolerates trailing whitespace/newlines.
EventLog read_csv(std::istream& in);

/// Mode-aware parse. In Lenient mode malformed rows are skipped and
/// tallied into `stats` (optional) instead of throwing; the header is
/// still required (a feed with the wrong header is the wrong feed, not a
/// damaged one). Strict mode matches read_csv(in) exactly.
EventLog read_csv(std::istream& in, ParseMode mode, ParseStats* stats = nullptr);

/// Convenience: parse from a string.
EventLog from_csv(const std::string& csv);

/// Convenience: mode-aware parse from a string.
EventLog from_csv(const std::string& csv, ParseMode mode, ParseStats* stats = nullptr);

}  // namespace rfidsim::sys
