// PortalSimulator: the full read-point simulation.
//
// Ties together the scene (geometry + motion), the RF layer (link budgets
// under fading), and the Gen 2 MAC (inventory rounds), for one or more
// readers in buffered continuous mode. The output is the same thing a real
// portal hands the back end: a time-stamped event log.
//
// Timing model: each reader runs inventory rounds back to back; rounds of
// different readers proceed concurrently on the simulation clock. Shadow
// fading is redrawn per (tag, round) — the coherence time of portal-scale
// shadowing at 1 m/s is on the order of one round. A fast-fading term adds
// per-transmission variation on the reverse link.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "fault/schedule.hpp"
#include "gen2/interference.hpp"
#include "obs/monitor.hpp"
#include "rf/propagation.hpp"
#include "scene/batch_evaluator.hpp"
#include "scene/scene.hpp"
#include "system/events.hpp"
#include "system/reader.hpp"

namespace rfidsim::sys {

/// Configuration of a complete portal installation.
struct PortalConfig {
  std::vector<ReaderConfig> readers;
  scene::EvaluatorParams evaluator{};
  /// Round-scale shadow fading (dB sigma).
  double shadow_sigma_db = 4.0;
  /// Coherence *distance* of the shadowing process (metres). The fade
  /// pattern is spatial: a tag moving through it sees correlated shadowing
  /// between nearby rounds, decorrelating on the wavelength scale, while a
  /// static tag keeps one realization for the whole pass. Modelled as
  /// AR(1) in displacement per (antenna, tag) path. <= 0 means independent
  /// per round.
  double shadow_coherence_m = 0.35;
  /// Per-transmission fast fading on the reverse link (dB sigma).
  double fast_sigma_db = 2.0;
  /// Per-pass systematic variation, drawn once per (tag, run): badge
  /// placement, clothing or hand contact, label application quality —
  /// effects that persist for a whole pass and that no amount of re-reads
  /// within the pass averages away. This is what keeps well-margined tags
  /// from reading 100% of passes, as the paper's 75-90% rows show.
  double pass_sigma_db = 4.5;
  /// Heavy-tail complement to pass_sigma_db: with this probability a tag
  /// is "badly worn" for the whole pass (badge flipped against the body,
  /// label creased over a metal edge) and suffers pass_outage_db extra
  /// loss. Gaussian pass variation alone cannot produce the ~1-in-10 hard
  /// failures the paper sees on well-margined badge positions.
  double pass_outage_probability = 0.0;
  double pass_outage_db = 18.0;
  gen2::InterferenceParams interference{};
  /// Infrastructure fault processes (reader crashes, dead antennas, RF
  /// jamming). All disabled by default; a fresh schedule is sampled per
  /// run from an RNG forked off the run seed, so fault timelines are as
  /// reproducible as the reads themselves.
  fault::FaultConfig faults{};
  double start_time_s = 0.0;
  double end_time_s = 4.0;
};

/// Per-reader statistics for one run.
struct ReaderRunStats {
  std::size_t rounds = 0;
  std::size_t total_slots = 0;
  std::size_t collision_slots = 0;
  std::size_t success_slots = 0;
  double busy_time_s = 0.0;         ///< Summed round durations.
  std::size_t crashes = 0;          ///< Outage windows hit during the pass.
  double downtime_s = 0.0;          ///< Time lost to crash/restart cycles.
  std::size_t jammed_rounds = 0;    ///< Rounds run under a jamming burst.
  std::size_t dead_antenna_rounds = 0;  ///< Rounds spent keyed into a dead cable.
};

/// Per-run statistics beyond the event log.
struct PortalRunStats {
  std::size_t rounds = 0;
  std::size_t total_slots = 0;
  std::size_t collision_slots = 0;
  std::size_t success_slots = 0;
  double busy_time_s = 0.0;  ///< Summed round durations across readers.
  /// Per-reader breakdown of the aggregates above plus observed faults.
  std::vector<ReaderRunStats> per_reader;
};

/// Simulates one pass (or a static interval) of the configured portal.
class PortalSimulator {
 public:
  /// The simulator references the scene; the scene must outlive it.
  PortalSimulator(const scene::Scene& scene, PortalConfig config);

  /// Runs from start_time to end_time in continuous mode; returns the
  /// chronological event log. Deterministic given `rng`'s seed.
  EventLog run(Rng& rng);

  /// Runs exactly one inventory round per reader at `t_s` (the paper's
  /// "a single read was performed each time" mode, Fig. 2).
  EventLog run_single_round(double t_s, Rng& rng);

  /// Stats from the most recent run.
  const PortalRunStats& stats() const { return stats_; }

  /// The fault timeline the most recent run executed under (empty when
  /// config.faults is all-off). Lets benches and the degraded-mode
  /// assessment see which readers/antennas were actually down.
  const fault::FaultSchedule& fault_schedule() const { return fault_schedule_; }

  /// Summarises the most recent run as one monitor observation: per-reader
  /// rounds from stats(), per-reader and portal-wide distinct-tag counts
  /// from `log` (pass it the log that run just returned). Feedback-free —
  /// reads simulator state only — and independent of the obs switches, so
  /// monitor detection stays available with hooks compiled out.
  obs::PassObservation pass_observation(const EventLog& log) const;

  /// Flushes batched observability tallies (the path evaluator's cache
  /// counters) into the process-wide registry. The evaluator's destructor
  /// does this too; sweep lanes that keep simulators alive call it at lane
  /// completion so mid-sweep registry dumps are complete.
  void flush_obs() const { evaluator_.flush_metrics(); }

 private:
  struct ReaderRuntime {
    ReaderConfig config;
    AntennaMux mux;
    gen2::InventoryEngine engine;
    /// Under InventoryMode::kMultiSession: one engine per configured
    /// session (each keeps its own Qfp, like a real reader's per-session
    /// inventory state). Empty under kSingleSession, where `engine` runs
    /// every round on the exact pre-multi-session code path.
    std::vector<gen2::InventoryEngine> session_engines;
    std::size_t round_index = 0;  ///< Rounds run this pass (session rotation).
    std::vector<gen2::TagState> tag_states;
    double clock_s = 0.0;
    double jam_probability = 0.0;
  };

  /// The engine for reader `rt`'s next round: `engine` in single-session
  /// mode; the interleaved rotation or the sequential time-segment pick
  /// from `session_engines` in multi-session mode.
  gen2::InventoryEngine& select_engine(ReaderRuntime& rt, double t_s);

  /// Builds per-tag link state for one reader's round at time t.
  /// `extra_loss_db` subtracts margin from both link directions (jamming
  /// bursts, dead-cable rounds).
  std::vector<gen2::TagLink> build_links(const ReaderRuntime& rt, std::size_t antenna,
                                         double t_s, Rng& rng,
                                         std::vector<gen2::TagState>& states,
                                         double extra_loss_db = 0.0);

  /// Executes one round for reader `r` at its current clock; appends events.
  void run_reader_round(std::size_t r, EventLog& log, Rng& rng);

  /// AR(1) shadowing state for one (antenna, tag) path.
  struct ShadowState {
    double value_db = 0.0;
    Vec3 last_position;
    bool initialized = false;
  };

  /// Draws the current shadowing for a path, advancing its AR(1)-in-space
  /// state given the tag's current world position.
  double sample_shadow(std::size_t antenna, std::size_t tag_index, const Vec3& position,
                       Rng& rng);

  /// Clears all shadowing states (new pass = new fade pattern) and draws
  /// fresh per-pass tag offsets.
  void reset_pass_state(Rng& rng);

  /// Per-reader labelled registry counters ({reader="rN"} children of the
  /// sys.portal.* families). Resolved once per simulator on first use with
  /// hooks enabled, so the round loop never takes the registry lock.
  struct ReaderHooks {
    obs::Counter* rounds = nullptr;
    obs::Counter* read_events = nullptr;
    obs::Counter* crashes = nullptr;
    obs::Counter* jammed_rounds = nullptr;
    obs::Counter* dead_antenna_rounds = nullptr;
  };
  const ReaderHooks& reader_hooks(std::size_t r);

  const scene::Scene& scene_;
  PortalConfig config_;
  /// The SoA batch kernel: one reader round evaluates every tag at one
  /// time instant, which is exactly its shape. Bit-identical to the scalar
  /// PathEvaluator (the retained oracle), so swapping it in changed no
  /// event stream.
  scene::BatchPathEvaluator evaluator_;
  std::vector<scene::TagAddress> tags_;
  std::vector<rf::PathTerms> terms_scratch_;  ///< Reused per round.
  std::vector<ReaderRuntime> readers_;
  std::vector<std::vector<ShadowState>> shadow_;  ///< [antenna][tag].
  std::vector<double> pass_offset_db_;            ///< Per-tag, per-run.
  fault::FaultSchedule fault_schedule_;           ///< Sampled per run.
  PortalRunStats stats_;
  std::vector<ReaderHooks> reader_hooks_;         ///< Lazy; see reader_hooks().
};

}  // namespace rfidsim::sys
