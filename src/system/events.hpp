// Read events: the reader-to-backend data stream.
//
// Real deployments see exactly this — a time-stamped stream of (tag EPC,
// reader, antenna, RSSI) tuples, full of duplicates and holes. Everything
// downstream (tracking logic, cleaning, reliability estimation) consumes
// this stream, never the simulator's ground truth.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "scene/tag.hpp"

namespace rfidsim::sys {

/// One successful tag singulation.
struct ReadEvent {
  scene::TagId tag;
  double time_s = 0.0;
  std::size_t reader_index = 0;
  std::size_t antenna_index = 0;  ///< Index into the scene's antenna list.
  DbmPower rssi{-60.0};
  /// Gen 2 session (0-3) of the inventory round that produced the read.
  /// Real readers report this in their event metadata; the session-fusion
  /// estimator (gen2::reliable) groups reads by it. Not serialized to the
  /// middleware CSV (the 2006-era trace format predates it), so existing
  /// archived-trace goldens are unaffected.
  std::uint8_t session = 0;
};

/// The chronological stream of reads from one simulation run.
using EventLog = std::vector<ReadEvent>;

}  // namespace rfidsim::sys
