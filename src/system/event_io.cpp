#include "system/event_io.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace rfidsim::sys {

namespace {
constexpr const char* kHeader = "time_s,tag,reader,antenna,rssi_dbm";

/// Parser registry hooks: the global tally of good/dropped rows. This is
/// what makes lenient-parse drops visible by default — previously they
/// only existed in the optional ParseStats out-parameter, so a caller
/// that passed nullptr silently discarded corrupt rows with no trace.
void record_parse_metrics(const ParseStats& stats) {
  static const struct Metrics {
    obs::Counter& rows_ok = obs::counter("sys.read_csv.rows_ok");
    obs::Counter& rows_bad = obs::counter("sys.read_csv.rows_bad");
    obs::Counter& parses = obs::counter("sys.read_csv.parses");
  } m;
  m.rows_ok.add(stats.rows_ok);
  m.rows_bad.add(stats.rows_bad);
  m.parses.add(1);
}
}  // namespace

void write_csv(std::ostream& out, const EventLog& log) {
  out << kHeader << '\n';
  out << std::fixed;
  for (const ReadEvent& ev : log) {
    out << std::setprecision(6) << ev.time_s << ',' << ev.tag.value << ','
        << ev.reader_index << ',' << ev.antenna_index << ',' << std::setprecision(2)
        << ev.rssi.value() << '\n';
  }
}

std::string to_csv(const EventLog& log) {
  std::ostringstream out;
  write_csv(out, log);
  return out.str();
}

EventLog read_csv(std::istream& in) { return read_csv(in, ParseMode::Strict); }

EventLog read_csv(std::istream& in, ParseMode mode, ParseStats* stats) {
  std::string line;
  require(static_cast<bool>(std::getline(in, line)), "read_csv: empty input");
  // Strip a potential trailing CR and compare the header.
  if (!line.empty() && line.back() == '\r') line.pop_back();
  require(line == kHeader, "read_csv: unexpected header: " + line);

  ParseStats local;
  EventLog log;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;

    std::istringstream row(line);
    std::string field;
    ReadEvent ev;
    try {
      require(static_cast<bool>(std::getline(row, field, ',')), "missing time");
      ev.time_s = std::stod(field);
      require(static_cast<bool>(std::getline(row, field, ',')), "missing tag");
      ev.tag.value = std::stoull(field);
      require(static_cast<bool>(std::getline(row, field, ',')), "missing reader");
      ev.reader_index = std::stoul(field);
      require(static_cast<bool>(std::getline(row, field, ',')), "missing antenna");
      ev.antenna_index = std::stoul(field);
      require(static_cast<bool>(std::getline(row, field, ',')), "missing rssi");
      ev.rssi = DbmPower(std::stod(field));
      if (mode == ParseMode::Lenient) {
        require(std::isfinite(ev.time_s), "non-finite time");
        require(std::isfinite(ev.rssi.value()), "non-finite rssi");
      }
    } catch (const std::exception& e) {
      if (mode == ParseMode::Strict) {
        throw ConfigError("read_csv: bad row " + std::to_string(line_no) + ": " +
                          e.what());
      }
      ++local.rows_bad;
      if (local.sample_errors.size() < ParseStats::kMaxSampleErrors) {
        local.sample_errors.push_back("row " + std::to_string(line_no) + ": " +
                                      e.what());
      }
      continue;
    }
    ++local.rows_ok;
    log.push_back(ev);
  }
  if (obs::hooks_enabled()) record_parse_metrics(local);
  if (stats) *stats = local;
  return log;
}

EventLog from_csv(const std::string& csv) {
  std::istringstream in(csv);
  return read_csv(in);
}

EventLog from_csv(const std::string& csv, ParseMode mode, ParseStats* stats) {
  std::istringstream in(csv);
  return read_csv(in, mode, stats);
}

}  // namespace rfidsim::sys
