#include "locate/landmarc.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace rfidsim::locate {

std::unordered_map<scene::TagId, RssiSignature> build_signatures(
    const sys::EventLog& log, std::size_t antenna_count, double missing_floor_dbm) {
  require(antenna_count >= 1, "build_signatures: need at least one antenna");

  struct Accumulator {
    std::vector<double> sum;
    std::vector<std::size_t> count;
  };
  std::unordered_map<scene::TagId, Accumulator> acc;
  for (const sys::ReadEvent& ev : log) {
    require(ev.antenna_index < antenna_count,
            "build_signatures: event antenna index out of range");
    Accumulator& a = acc[ev.tag];
    if (a.sum.empty()) {
      a.sum.assign(antenna_count, 0.0);
      a.count.assign(antenna_count, 0);
    }
    a.sum[ev.antenna_index] += ev.rssi.value();
    ++a.count[ev.antenna_index];
  }

  std::unordered_map<scene::TagId, RssiSignature> result;
  for (const auto& [tag, a] : acc) {
    RssiSignature sig;
    sig.per_antenna_dbm.resize(antenna_count);
    for (std::size_t i = 0; i < antenna_count; ++i) {
      sig.per_antenna_dbm[i] =
          a.count[i] > 0 ? a.sum[i] / static_cast<double>(a.count[i]) : missing_floor_dbm;
    }
    result.emplace(tag, std::move(sig));
  }
  return result;
}

double signal_distance(const RssiSignature& a, const RssiSignature& b) {
  require(a.per_antenna_dbm.size() == b.per_antenna_dbm.size(),
          "signal_distance: signature sizes differ");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.per_antenna_dbm.size(); ++i) {
    const double d = a.per_antenna_dbm[i] - b.per_antenna_dbm[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

LandmarcLocator::LandmarcLocator(std::vector<ReferenceTag> references, std::size_t k)
    : references_(std::move(references)), k_(k) {
  require(!references_.empty(), "LandmarcLocator: need at least one reference tag");
  require(k_ >= 1, "LandmarcLocator: k must be >= 1");
}

LocationEstimate LandmarcLocator::locate(
    const RssiSignature& target,
    const std::unordered_map<scene::TagId, RssiSignature>& reference_signatures) const {
  struct Scored {
    double distance;
    const ReferenceTag* ref;
  };
  std::vector<Scored> scored;
  scored.reserve(references_.size());
  for (const ReferenceTag& ref : references_) {
    const auto it = reference_signatures.find(ref.id);
    if (it == reference_signatures.end()) continue;  // Reference unheard this window.
    scored.push_back({signal_distance(target, it->second), &ref});
  }
  require(!scored.empty(), "LandmarcLocator: no reference signatures available");

  const std::size_t use = std::min(k_, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<std::ptrdiff_t>(use),
                    scored.end(),
                    [](const Scored& a, const Scored& b) { return a.distance < b.distance; });

  LocationEstimate estimate;
  // An exact signal match pins the answer to that reference.
  if (scored.front().distance < 1e-9) {
    estimate.position = scored.front().ref->position;
    estimate.neighbours.push_back(scored.front().ref->id);
    estimate.distances.push_back(scored.front().distance);
    return estimate;
  }

  double weight_sum = 0.0;
  Vec3 position{};
  for (std::size_t i = 0; i < use; ++i) {
    const double w = 1.0 / (scored[i].distance * scored[i].distance);
    weight_sum += w;
    position += scored[i].ref->position * w;
    estimate.neighbours.push_back(scored[i].ref->id);
    estimate.distances.push_back(scored[i].distance);
  }
  estimate.position = position / weight_sum;
  return estimate;
}

}  // namespace rfidsim::locate
