// LANDMARC-style indoor localization with reference tags.
//
// The paper's reference [11] (Ni, Liu, Lau, Patil: "LANDMARC: Indoor
// location sensing using active RFID") is its citation for tracking people
// at better-than-portal granularity. The idea: sprinkle *reference tags*
// at known positions; a tag is located by comparing its RSSI signature
// across several antennas against the reference tags' signatures, and
// averaging the positions of the k nearest references in signal space —
// letting the references calibrate out the room's propagation quirks.
// Implemented here over this simulator's event logs (LANDMARC used active
// tags; pair it with rf::TagDesign::active_beacon()).
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "common/vec3.hpp"
#include "scene/tag.hpp"
#include "system/events.hpp"

namespace rfidsim::locate {

/// Mean RSSI per antenna for one tag; antennas never heard hold
/// `missing_floor_dbm`.
struct RssiSignature {
  std::vector<double> per_antenna_dbm;
};

/// A reference tag: known identity at a known position.
struct ReferenceTag {
  scene::TagId id;
  Vec3 position;
};

/// One localization answer.
struct LocationEstimate {
  Vec3 position;
  /// The reference tags that voted, nearest (in signal space) first.
  std::vector<scene::TagId> neighbours;
  /// Signal-space distances of those neighbours (same order).
  std::vector<double> distances;
};

/// Builds per-tag RSSI signatures from an event log: the mean RSSI of each
/// tag's reads per antenna, with unheard antennas floored.
std::unordered_map<scene::TagId, RssiSignature> build_signatures(
    const sys::EventLog& log, std::size_t antenna_count,
    double missing_floor_dbm = -90.0);

/// The k-nearest-neighbour locator.
class LandmarcLocator {
 public:
  /// `k` is the neighbour count (LANDMARC's paper found k=4 best for its
  /// grid). Throws ConfigError if references are empty or k == 0.
  LandmarcLocator(std::vector<ReferenceTag> references, std::size_t k = 4);

  /// Locates one target signature against the references' observed
  /// signatures. References missing from `reference_signatures` are
  /// skipped; throws ConfigError if none remain. Position is the
  /// 1/distance^2-weighted average of the k nearest references' known
  /// positions (exact signal matches snap to that reference).
  LocationEstimate locate(
      const RssiSignature& target,
      const std::unordered_map<scene::TagId, RssiSignature>& reference_signatures) const;

  const std::vector<ReferenceTag>& references() const { return references_; }
  std::size_t k() const { return k_; }

 private:
  std::vector<ReferenceTag> references_;
  std::size_t k_;
};

/// Euclidean distance between signatures (LANDMARC's E_j metric). Sizes
/// must match (ConfigError otherwise).
double signal_distance(const RssiSignature& a, const RssiSignature& b);

}  // namespace rfidsim::locate
