#include "rf/coupling.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace rfidsim::rf {

Decibel pairwise_coupling_loss(double spacing_m, const CouplingParams& params,
                               double alignment) {
  require(alignment >= 0.0 && alignment <= 1.0,
          "pairwise_coupling_loss: alignment must be in [0, 1]");
  const double s = std::max(spacing_m, 0.0);
  const double loss = params.contact_loss_db * alignment * std::exp(-s / params.decay_scale_m);
  return Decibel(loss < params.negligible_db ? 0.0 : loss);
}

Decibel total_coupling_loss(const std::vector<double>& neighbour_spacings_m,
                            const CouplingParams& params) {
  double total = 0.0;
  for (double s : neighbour_spacings_m) {
    total += pairwise_coupling_loss(s, params).value();
  }
  return Decibel(std::min(total, params.contact_loss_db * 1.5));
}

double minimum_safe_spacing_m(double tolerable_db, const CouplingParams& params) {
  require(tolerable_db > 0.0, "minimum_safe_spacing_m: tolerable_db must be > 0");
  if (tolerable_db >= params.contact_loss_db) return 0.0;
  return params.decay_scale_m * std::log(params.contact_loss_db / tolerable_db);
}

}  // namespace rfidsim::rf
