// Material effects on tag performance.
//
// The paper's Table 1 (tags on router boxes) is dominated by two material
// mechanisms the authors call out explicitly in §2.1:
//  * occlusion ("block the signal when the material is placed between the
//    antenna and the tag") — modelled as a penetration loss per traversed
//    thickness, and
//  * detuning/grounding ("may act as a grounding plate if the tag is too
//    close to the material") — modelled as a backing loss that grows as the
//    tag-to-material gap shrinks below a fraction of the wavelength.
#pragma once

#include <string_view>

#include "common/units.hpp"

namespace rfidsim::rf {

/// Materials that appear in the paper's scenarios.
enum class Material {
  Air,        ///< No effect.
  Cardboard,  ///< Packaging: mild absorption.
  Foam,       ///< Packing foam: negligible.
  Plastic,    ///< Router shells: mild.
  Metal,      ///< Router casings: blocks and grounds.
  Liquid,     ///< Water-rich contents: absorbs strongly, grounds moderately.
  HumanBody,  ///< Mostly water: strong absorber, moderate grounding.
};

/// Human-readable material name (for tables and logs).
std::string_view material_name(Material m);

/// Loss for a signal penetrating `thickness_m` of the material. Metal is
/// effectively opaque regardless of thickness; lossy dielectrics attenuate
/// per centimetre.
Decibel penetration_loss(Material m, double thickness_m);

/// Amplitude reflection coefficient of the material at UHF (0 = transparent,
/// 1 = perfect mirror). Drives both the image-cancellation model below and
/// the scene's reflection bonus.
double reflection_coefficient(Material m);

/// Detuning/grounding loss for a tag mounted with an air gap of `gap_m`
/// in front of a backing slab of material `m`. The loss decays roughly
/// exponentially with gap on the scale of lambda/20 (~1.6 cm at 915 MHz):
/// a tag flush on metal is unreadable; 2-3 cm of spacer largely recovers it.
/// This is the isotropic (angle-averaged) term; the angle-resolved effect
/// is image_factor_gain.
Decibel backing_loss(Material m, double gap_m, double frequency_hz = 915e6);

/// Ground-plane image factor for a dipole tag mounted `gap_m` in front of a
/// backing slab, radiating at elevation `sin_alpha` above the tag plane
/// (sin_alpha = 1: broadside, straight off the face; sin_alpha -> 0:
/// grazing, along the face).
///
/// The backing reflects an out-of-phase image of the dipole; direct and
/// image rays interfere with phase difference 2*k*gap*sin_alpha:
///     F = |1 - Gamma * exp(-j * 2k * gap * sin_alpha)|
/// For a tag close above metal this *cancels toward grazing directions* —
/// the reason tags on top of the paper's router boxes read at 29% while
/// front tags read at 87% — and can give up to +6 dB constructive gain
/// broadside at quarter-wave spacing. Returned as a signed gain in dB,
/// floored at `floor_db`.
Decibel image_factor_gain(Material m, double gap_m, double sin_alpha,
                          double frequency_hz = 915e6, double floor_db = -25.0);

/// True if the material substantially reflects UHF (metal, and to a lesser
/// degree water-rich bodies) — used by the scene's reflection bonus model.
bool is_reflective(Material m);

}  // namespace rfidsim::rf
