// Large-scale propagation models for the UHF RFID channel.
//
// Passive UHF RFID at ~915 MHz over portal-scale distances (1-10 m) is well
// described by free-space path loss plus (a) a two-ray ground-reflection
// ripple that creates the distance-dependent fade pattern readers see in
// warehouses, and (b) log-normal shadow fading capturing everything the
// deterministic terms miss (cart clutter, cable flex, people moving).
// The paper's Figure 2 (gradual reliability decay from 2 m to 9 m) is the
// macroscopic signature of exactly these effects.
#pragma once

#include "common/rng.hpp"
#include "common/units.hpp"

namespace rfidsim::rf {

/// Free-space path loss (Friis) in dB for a separation `distance_m` at
/// carrier `frequency_hz`. Distances below 1 cm are clamped to 1 cm to keep
/// the near field from producing negative losses.
Decibel free_space_path_loss(double distance_m, double frequency_hz);

/// Two-ray ground-reflection model, expressed as a *gain relative to free
/// space*: 20*log10|1 + Gamma * e^{j*dphi}| where dphi is the phase
/// difference between the direct and ground-bounced path. Positive in
/// constructive regions (up to ~+6 dB), negative in fades. Nulls are
/// clamped to `floor_db` because real floors are rough scatterers, not
/// mirrors.
class TwoRayGround {
 public:
  struct Params {
    double reflection_coefficient = 0.4;  ///< |Gamma| of the floor (0 disables).
    double floor_db = -15.0;              ///< Deepest allowed fade.
  };

  TwoRayGround() = default;
  explicit TwoRayGround(Params p) : params_(p) {}

  /// Gain relative to free space for a TX at height `h_tx_m`, RX at height
  /// `h_rx_m`, horizontal separation `distance_m`, carrier `frequency_hz`.
  Decibel gain(double h_tx_m, double h_rx_m, double distance_m, double frequency_hz) const;

  const Params& params() const { return params_; }

 private:
  Params params_;
};

/// Log-normal shadow fading: zero-mean Gaussian in dB with a configurable
/// standard deviation, drawn independently per interrogation attempt.
class ShadowFading {
 public:
  /// `sigma_db` <= 0 disables fading (draws return 0 dB).
  explicit ShadowFading(double sigma_db = 4.0) : sigma_db_(sigma_db) {}

  /// One fading realization.
  Decibel draw(Rng& rng) const;

  /// Probability that a link with the given mean margin (dB) stays above
  /// threshold under this fading, i.e. P(margin + X > 0) with
  /// X ~ N(0, sigma^2). With fading disabled this is a step function.
  double exceed_probability(Decibel mean_margin) const;

  double sigma_db() const { return sigma_db_; }

 private:
  double sigma_db_;
};

}  // namespace rfidsim::rf
