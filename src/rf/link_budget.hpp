// The passive-RFID link budget: can the tag power up, and can the reader
// decode the backscatter?
//
// A passive tag has no battery; the reader's carrier must deliver enough
// power to wake the chip (forward link), and the tag's modulated reflection
// must arrive above the reader's sensitivity (reverse link). For 2006-era
// Gen 2 hardware — the paper's Symbol tags and Matrix AR400 reader — the
// forward link is the binding constraint at portal ranges, which this model
// reproduces.
#pragma once

#include "common/rng.hpp"
#include "common/units.hpp"
#include "rf/propagation.hpp"

namespace rfidsim::rf {

/// Hardware constants of the reader/tag pair. Defaults approximate the
/// paper's setup: 30 dBm (1 W) conducted power, a -11 dBm tag wake-up
/// threshold typical of 2006-era EPC chips, and a -70 dBm reader
/// sensitivity.
struct RadioParams {
  DbmPower tx_power{30.0};
  Decibel cable_loss{0.8};            ///< Reader-to-antenna feed loss.
  DbmPower tag_sensitivity{-11.0};    ///< Minimum power to power up the chip.
  DbmPower reader_sensitivity{-70.0}; ///< Minimum backscatter power to decode.
  Decibel backscatter_loss{6.0};      ///< Modulation + re-radiation loss at the tag.
  double frequency_hz = 915e6;        ///< US UHF ISM band centre.
  /// Path-loss exponent: 2.0 is free space; cluttered indoor spaces run
  /// 2.2-2.6. Applied as FSPL(1 m) + 10*n*log10(d).
  double path_loss_exponent = 2.0;
};

/// Geometry- and environment-dependent terms of one reader-antenna -> tag
/// path, already evaluated by the scene layer. All losses are entered as
/// positive dB values.
struct PathTerms {
  double distance_m = 1.0;
  Decibel reader_gain{6.0};      ///< Reader antenna gain toward the tag.
  Decibel tag_gain{2.15};        ///< Tag antenna gain toward the reader.
  Decibel polarization_loss{3.0};
  Decibel material_loss{0.0};    ///< Occlusion + backing/detuning losses.
  Decibel coupling_loss{0.0};    ///< Tag-to-tag mutual coupling.
  Decibel blockage_loss{0.0};    ///< Bodies/objects in the Fresnel zone.
  Decibel reflection_gain{0.0};  ///< Constructive bounce off nearby reflectors.
  Decibel multipath_gain{0.0};   ///< Two-ray ripple relative to free space.
};

/// Result of evaluating one direction of the link.
struct LinkResult {
  DbmPower received;   ///< Power arriving at the receiving end.
  Decibel margin;      ///< received - sensitivity; positive means closed.
  bool closed = false; ///< margin > 0.
};

/// Deterministic + probabilistic evaluation of the two-way link.
class LinkBudget {
 public:
  LinkBudget() = default;
  explicit LinkBudget(RadioParams params) : params_(params) {}

  /// Mean (no-fading) power delivered to the tag chip.
  LinkResult forward(const PathTerms& terms) const;

  /// Mean (no-fading) backscatter power at the reader, given the power that
  /// actually reached the tag (the reverse link re-traverses every path
  /// loss except the tag's chip threshold).
  LinkResult reverse(const PathTerms& terms, DbmPower power_at_tag) const;

  /// Forward link for an active tag: the same received power, but judged
  /// against the tag's *receiver* sensitivity instead of the passive
  /// wake-up threshold (battery-assisted tags decode commands tens of dB
  /// below the energy-harvesting floor).
  LinkResult forward_active(const PathTerms& terms, DbmPower rx_sensitivity) const;

  /// Reverse link for an active beacon: the tag transmits its reply at its
  /// own power rather than reflecting the reader's carrier, so the path
  /// loss is paid once, not twice.
  LinkResult reverse_active(const PathTerms& terms, DbmPower tag_tx_power) const;

  /// The link's limiting margin: min(forward margin, reverse margin after a
  /// forward link that just closed). One number summarises "how much fading
  /// head-room does this tag have".
  Decibel limiting_margin(const PathTerms& terms) const;

  /// Probability that a single interrogation attempt succeeds at the
  /// physical layer under log-normal fading: Phi(limiting_margin / sigma).
  /// Both directions share one shadowing realization (same path, same
  /// obstacles) — the standard assumption for monostatic RFID.
  double attempt_success_probability(const PathTerms& terms,
                                     const ShadowFading& fading) const;

  /// Samples one attempt: draws a fading realization and tests both links.
  bool sample_attempt(const PathTerms& terms, const ShadowFading& fading, Rng& rng) const;

  const RadioParams& params() const { return params_; }

 private:
  /// Sum of all geometry losses along one traversal of the path (positive
  /// dB, subtracted from the budget).
  Decibel one_way_path_loss(const PathTerms& terms) const;

  RadioParams params_;
};

}  // namespace rfidsim::rf
