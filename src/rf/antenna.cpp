#include "rf/antenna.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace rfidsim::rf {

Decibel ReaderAntennaPattern::gain(double off_boresight_rad) const {
  const double theta = std::abs(off_boresight_rad);
  if (theta >= std::numbers::pi / 2.0) {
    return Decibel(params_.backlobe_floor_dbi);
  }
  // Fit a cos^n pattern so that gain drops 3 dB at half the beamwidth:
  //   n = -3 / (20*log10(cos(bw/2)))  gives  10*log10(cos^n) = -3 dB there.
  const double half_bw_rad = params_.beamwidth_deg * std::numbers::pi / 360.0;
  const double cos_half = std::cos(half_bw_rad);
  const double n = -3.0 / (10.0 * std::log10(std::max(cos_half, 1e-6)));
  const double c = std::cos(theta);
  const double rolloff_db = 10.0 * n * std::log10(std::max(c, 1e-6));
  const double g = params_.boresight_gain_dbi + rolloff_db;
  return Decibel(std::max(g, params_.backlobe_floor_dbi));
}

Decibel ReaderAntennaPattern::gain_toward(const Pose& pose, const Vec3& point) const {
  const Vec3 dir = point - pose.position;
  if (dir.norm2() == 0.0) return Decibel(params_.boresight_gain_dbi);
  return gain(angle_between(pose.frame.forward, dir));
}

Decibel DipoleTagAntenna::gain(const Vec3& axis, const Vec3& direction) const {
  const double theta = angle_between(axis, direction);
  const double s = std::sin(theta);
  const double pattern_db = 20.0 * std::log10(std::max(std::abs(s), 1e-6));
  const double g = params_.peak_gain_dbi + pattern_db;
  return Decibel(std::max(g, params_.peak_gain_dbi + params_.null_floor_db));
}

Decibel polarization_mismatch(bool reader_circular, const Vec3& reader_polarization,
                              const Vec3& tag_axis, const Vec3& propagation_direction,
                              double cross_polar_cap_db) {
  if (reader_circular) {
    // Circular-to-linear coupling is 3 dB independent of tag roll.
    return Decibel(3.0);
  }
  // Project both polarization vectors onto the plane transverse to
  // propagation, then take the angle between them.
  const Vec3 k = propagation_direction.normalized();
  const Vec3 e_r = (reader_polarization - k * reader_polarization.dot(k)).normalized();
  const Vec3 e_t = (tag_axis - k * tag_axis.dot(k)).normalized();
  if (e_r.norm2() == 0.0 || e_t.norm2() == 0.0) {
    return Decibel(cross_polar_cap_db);
  }
  const double c = std::abs(e_r.dot(e_t));
  const double loss_db = -20.0 * std::log10(std::max(c, 1e-6));
  return Decibel(std::min(loss_db, cross_polar_cap_db));
}

}  // namespace rfidsim::rf
