// Tag designs beyond the baseline single dipole.
//
// The paper's closing line: "Future extensions of this work involve
// experimenting with active tags, and tag reliability for different tag
// designs." This module implements both extensions:
//  * PassiveSingleDipole — the Symbol-style baseline measured throughout
//    the paper: one dipole, sin^2 pattern, axial null, chip wake-up
//    threshold on the forward link.
//  * PassiveDualDipole — two orthogonal dipoles on one chip (the standard
//    industry fix for Fig. 4's orientation sensitivity): the tag responds
//    on whichever dipole couples better, leaving a null only along the
//    patch normal.
//  * ActiveBeacon — a battery-powered tag: no forward-link wake-up
//    constraint at all; it transmits its reply at its own (milliwatt-scale)
//    power, so range is bounded by the reader's receive sensitivity, not
//    by the power-up link. This is why the paper calls active tags "much
//    stronger signal, much longer communication range".
#pragma once

#include <string_view>

#include "common/units.hpp"
#include "common/vec3.hpp"
#include "rf/antenna.hpp"

namespace rfidsim::rf {

/// The supported tag architectures.
enum class TagType {
  PassiveSingleDipole,
  PassiveDualDipole,
  ActiveBeacon,
};

/// Human-readable tag-type name.
std::string_view tag_type_name(TagType type);

/// Design parameters of one tag model.
struct TagDesign {
  TagType type = TagType::PassiveSingleDipole;
  /// Transmit power of an active beacon's reply (ignored for passive).
  DbmPower active_tx_power{-10.0};
  /// Active tags keep a real receiver for reader commands; its sensitivity
  /// replaces the passive wake-up threshold on the forward link.
  DbmPower active_rx_sensitivity{-85.0};

  /// Factory helpers for the three standard designs.
  static TagDesign single_dipole() { return TagDesign{}; }
  static TagDesign dual_dipole() {
    TagDesign d;
    d.type = TagType::PassiveDualDipole;
    return d;
  }
  static TagDesign active_beacon() {
    TagDesign d;
    d.type = TagType::ActiveBeacon;
    return d;
  }
};

/// Antenna gain of a tag of the given design toward `direction`, given the
/// mounting geometry. `primary_axis` is the main dipole; a dual-dipole
/// design adds the orthogonal dipole in the patch plane
/// (patch_normal x primary_axis) and responds on the better of the two.
Decibel tag_design_gain(const TagDesign& design, const DipoleTagAntenna& element,
                        const Vec3& primary_axis, const Vec3& patch_normal,
                        const Vec3& direction);

}  // namespace rfidsim::rf
