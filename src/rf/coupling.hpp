// Tag-to-tag mutual coupling.
//
// Dipole tags packed in parallel detune one another: each neighbouring
// dipole loads the tag's antenna, shifting its resonance and cutting the
// power delivered to the chip. The paper's Figure 4 measures the
// consequence directly — tags need 20-40 mm of spacing to read reliably —
// and §4 warns that all redundancy gains assume that minimum distance is
// respected.
#pragma once

#include <vector>

#include "common/units.hpp"

namespace rfidsim::rf {

/// Parameters of the exponential coupling-loss model.
struct CouplingParams {
  /// Loss when two parallel tags are (nearly) touching, in dB.
  double contact_loss_db = 26.0;
  /// e-folding distance of the loss decay, in metres. With 8 mm, losses at
  /// {0.3, 4, 10, 20, 40} mm are roughly {25, 16, 7, 2, 0.2} dB — matching
  /// the paper's observed 20-40 mm safe distance.
  double decay_scale_m = 0.008;
  /// Couplings below this are treated as zero (numerical cutoff).
  double negligible_db = 0.05;
};

/// Coupling loss induced on a tag by a single parallel neighbour at
/// `spacing_m` (edge-to-edge). Antiparallel or orthogonal neighbours couple
/// less; `alignment` in [0, 1] scales the loss (1 = parallel, the paper's
/// worst case and test configuration).
Decibel pairwise_coupling_loss(double spacing_m, const CouplingParams& params = {},
                               double alignment = 1.0);

/// Total coupling loss on one tag from a set of neighbour spacings.
/// Individual dB losses add (each neighbour independently degrades the
/// antenna's delivered power), capped at `contact_loss_db * 1.5` because a
/// fully detuned antenna cannot get *worse*.
Decibel total_coupling_loss(const std::vector<double>& neighbour_spacings_m,
                            const CouplingParams& params = {});

/// The minimum spacing at which the pairwise loss falls below
/// `tolerable_db` — the model's analogue of the paper's "minimum safe
/// distance". Returned in metres.
double minimum_safe_spacing_m(double tolerable_db, const CouplingParams& params = {});

}  // namespace rfidsim::rf
