#include "rf/link_budget.hpp"

#include <algorithm>
#include <cmath>

namespace rfidsim::rf {

Decibel LinkBudget::one_way_path_loss(const PathTerms& terms) const {
  // Reference free-space loss at 1 m, then the configured distance
  // exponent beyond it.
  Decibel loss = free_space_path_loss(1.0, params_.frequency_hz) +
                 Decibel(10.0 * params_.path_loss_exponent *
                         std::log10(std::max(terms.distance_m, 0.01)));
  loss += terms.polarization_loss;
  loss += terms.material_loss;
  loss += terms.coupling_loss;
  loss += terms.blockage_loss;
  loss -= terms.reflection_gain;
  loss -= terms.multipath_gain;
  return loss;
}

LinkResult LinkBudget::forward(const PathTerms& terms) const {
  LinkResult r;
  r.received = params_.tx_power - params_.cable_loss + terms.reader_gain + terms.tag_gain -
               one_way_path_loss(terms);
  r.margin = r.received - params_.tag_sensitivity;
  r.closed = r.margin.value() > 0.0;
  return r;
}

LinkResult LinkBudget::reverse(const PathTerms& terms, DbmPower power_at_tag) const {
  LinkResult r;
  r.received = power_at_tag - params_.backscatter_loss + terms.tag_gain + terms.reader_gain -
               one_way_path_loss(terms) - params_.cable_loss;
  r.margin = r.received - params_.reader_sensitivity;
  r.closed = r.margin.value() > 0.0;
  return r;
}

LinkResult LinkBudget::forward_active(const PathTerms& terms,
                                      DbmPower rx_sensitivity) const {
  LinkResult r = forward(terms);
  r.margin = r.received - rx_sensitivity;
  r.closed = r.margin.value() > 0.0;
  return r;
}

LinkResult LinkBudget::reverse_active(const PathTerms& terms,
                                      DbmPower tag_tx_power) const {
  LinkResult r;
  r.received = tag_tx_power + terms.tag_gain + terms.reader_gain -
               one_way_path_loss(terms) - params_.cable_loss;
  r.margin = r.received - params_.reader_sensitivity;
  r.closed = r.margin.value() > 0.0;
  return r;
}

Decibel LinkBudget::limiting_margin(const PathTerms& terms) const {
  const LinkResult fwd = forward(terms);
  const LinkResult rev = reverse(terms, fwd.received);
  return std::min(fwd.margin, rev.margin);
}

double LinkBudget::attempt_success_probability(const PathTerms& terms,
                                               const ShadowFading& fading) const {
  return fading.exceed_probability(limiting_margin(terms));
}

bool LinkBudget::sample_attempt(const PathTerms& terms, const ShadowFading& fading,
                                Rng& rng) const {
  const Decibel x = fading.draw(rng);
  return (limiting_margin(terms) + x).value() > 0.0;
}

}  // namespace rfidsim::rf
