// Antenna gain patterns and polarization for readers and tags.
//
// Two pattern families matter for the paper's experiments:
//  * the reader's circularly-polarized area (patch) antenna, whose gain
//    rolls off away from boresight, and
//  * the tag's single dipole, whose sin^2 doughnut pattern makes tag
//    orientation the dominant reliability factor (paper Figs. 3-4).
#pragma once

#include "common/pose.hpp"
#include "common/units.hpp"
#include "common/vec3.hpp"

namespace rfidsim::rf {

/// A circularly-polarized patch/area antenna, the kind shipped with portal
/// readers such as the Matrix AR400 used in the paper.
class ReaderAntennaPattern {
 public:
  struct Params {
    double boresight_gain_dbi = 6.0;  ///< Peak gain on boresight.
    /// Half-power beamwidth in degrees (typical area antennas: 60-70 deg).
    double beamwidth_deg = 65.0;
    double backlobe_floor_dbi = -14.0;  ///< Gain floor behind the antenna.
    bool circular_polarization = true;
    /// Circular polarization purity degrades off boresight: the axial
    /// ratio grows, adding polarization loss beyond the ideal 3 dB. This
    /// is the extra loss at 90 degrees off boresight; it scales
    /// quadratically with angle.
    double axial_ratio_loss_db_at_90deg = 8.0;
  };

  ReaderAntennaPattern() = default;
  explicit ReaderAntennaPattern(Params p) : params_(p) {}

  /// Gain toward a given direction, where `off_boresight_rad` is the angle
  /// between the antenna's forward axis and the direction to the tag.
  /// Uses a cos^n main lobe fit to the beamwidth, clamped at the backlobe
  /// floor.
  Decibel gain(double off_boresight_rad) const;

  /// Convenience overload: gain from an antenna `pose` toward `point`.
  Decibel gain_toward(const Pose& pose, const Vec3& point) const;

  const Params& params() const { return params_; }

 private:
  Params params_;
};

/// A single-dipole tag antenna (Symbol-style 2.5 cm x 10 cm patch).
class DipoleTagAntenna {
 public:
  struct Params {
    double peak_gain_dbi = 2.15;  ///< Ideal half-wave dipole broadside gain.
    /// Depth of the axial null. Real tags never reach a perfect null
    /// because of scattering, so the pattern is floored here.
    double null_floor_db = -25.0;
  };

  DipoleTagAntenna() = default;
  explicit DipoleTagAntenna(Params p) : params_(p) {}

  /// Gain toward `direction` for a tag whose dipole axis is `axis`.
  /// The dipole power pattern is sin^2(theta) where theta is the angle
  /// between axis and direction: broadside (theta=90 deg) is peak,
  /// end-on (theta=0) is the null.
  Decibel gain(const Vec3& axis, const Vec3& direction) const;

  const Params& params() const { return params_; }

 private:
  Params params_;
};

/// Polarization mismatch between reader and tag, returned as a POSITIVE
/// loss in dB.
///
/// A circularly-polarized reader loses a constant 3 dB to any linear tag
/// regardless of tag roll — which is why portals use circular antennas.
/// A linearly-polarized reader loses -20*log10|cos(psi)| where psi is the
/// angle between the polarization vectors (capped at `cross_polar_cap_db`,
/// since cross-polar isolation is finite).
Decibel polarization_mismatch(bool reader_circular, const Vec3& reader_polarization,
                              const Vec3& tag_axis, const Vec3& propagation_direction,
                              double cross_polar_cap_db = 20.0);

}  // namespace rfidsim::rf
