#include "rf/tag_design.hpp"

#include <algorithm>

namespace rfidsim::rf {

std::string_view tag_type_name(TagType type) {
  switch (type) {
    case TagType::PassiveSingleDipole: return "passive single-dipole";
    case TagType::PassiveDualDipole: return "passive dual-dipole";
    case TagType::ActiveBeacon: return "active beacon";
  }
  return "unknown";
}

Decibel tag_design_gain(const TagDesign& design, const DipoleTagAntenna& element,
                        const Vec3& primary_axis, const Vec3& patch_normal,
                        const Vec3& direction) {
  const Decibel primary = element.gain(primary_axis, direction);
  if (design.type == TagType::PassiveSingleDipole ||
      design.type == TagType::ActiveBeacon) {
    // Active beacons in this model use a single-dipole element too; their
    // advantage is the link budget, not the pattern.
    return primary;
  }
  // Dual dipole: the second element lies in the patch plane, orthogonal to
  // the first; the chip responds on whichever couples better.
  const Vec3 secondary_axis = patch_normal.cross(primary_axis).normalized();
  if (secondary_axis.norm2() == 0.0) return primary;
  const Decibel secondary = element.gain(secondary_axis, direction);
  return std::max(primary, secondary);
}

}  // namespace rfidsim::rf
