#include "rf/propagation.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <numbers>

namespace rfidsim::rf {

Decibel free_space_path_loss(double distance_m, double frequency_hz) {
  const double d = std::max(distance_m, 0.01);
  const double lambda = wavelength_m(frequency_hz);
  return Decibel(20.0 * std::log10(4.0 * std::numbers::pi * d / lambda));
}

Decibel TwoRayGround::gain(double h_tx_m, double h_rx_m, double distance_m,
                           double frequency_hz) const {
  if (params_.reflection_coefficient <= 0.0) return Decibel(0.0);
  const double d = std::max(distance_m, 0.01);
  const double lambda = wavelength_m(frequency_hz);

  // Path lengths of the direct ray and the ground-bounced ray.
  const double dh = h_tx_m - h_rx_m;
  const double sh = h_tx_m + h_rx_m;
  const double direct = std::sqrt(d * d + dh * dh);
  const double bounced = std::sqrt(d * d + sh * sh);

  const double dphi = 2.0 * std::numbers::pi * (bounced - direct) / lambda;
  // Ground bounce at grazing incidence flips phase (Gamma ~ -|Gamma|); the
  // bounced ray is also slightly weaker by the path-length ratio.
  const std::complex<double> gamma(-params_.reflection_coefficient, 0.0);
  const std::complex<double> sum =
      1.0 + gamma * (direct / bounced) * std::exp(std::complex<double>(0.0, dphi));
  const double mag = std::abs(sum);
  const double gain_db = 20.0 * std::log10(std::max(mag, 1e-6));
  return Decibel(std::max(gain_db, params_.floor_db));
}

Decibel ShadowFading::draw(Rng& rng) const {
  if (sigma_db_ <= 0.0) return Decibel(0.0);
  return Decibel(rng.gaussian(0.0, sigma_db_));
}

double ShadowFading::exceed_probability(Decibel mean_margin) const {
  if (sigma_db_ <= 0.0) return mean_margin.value() > 0.0 ? 1.0 : 0.0;
  // P(N(0, sigma) > -margin) = Phi(margin / sigma).
  return 0.5 * std::erfc(-mean_margin.value() / (sigma_db_ * std::numbers::sqrt2));
}

}  // namespace rfidsim::rf
