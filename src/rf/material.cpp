#include "rf/material.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace rfidsim::rf {

namespace {

// Absorption per centimetre of traversed material, in dB.
double absorption_db_per_cm(Material m) {
  switch (m) {
    case Material::Air: return 0.0;
    case Material::Cardboard: return 0.3;
    case Material::Foam: return 0.05;
    case Material::Plastic: return 0.4;
    case Material::Metal: return 1e6;  // Opaque; handled in penetration_loss.
    case Material::Liquid: return 4.0;
    case Material::HumanBody: return 3.0;
  }
  return 0.0;
}

// Peak backing loss for a tag mounted flush (zero gap) on the material.
double flush_backing_db(Material m) {
  switch (m) {
    case Material::Air:
    case Material::Foam: return 0.0;
    case Material::Cardboard: return 0.5;
    case Material::Plastic: return 1.0;
    case Material::Metal: return 35.0;
    case Material::Liquid: return 15.0;
    case Material::HumanBody: return 12.0;
  }
  return 0.0;
}

}  // namespace

std::string_view material_name(Material m) {
  switch (m) {
    case Material::Air: return "air";
    case Material::Cardboard: return "cardboard";
    case Material::Foam: return "foam";
    case Material::Plastic: return "plastic";
    case Material::Metal: return "metal";
    case Material::Liquid: return "liquid";
    case Material::HumanBody: return "human body";
  }
  return "unknown";
}

Decibel penetration_loss(Material m, double thickness_m) {
  if (thickness_m <= 0.0) return Decibel(0.0);
  if (m == Material::Metal) {
    // Even foil is opaque at UHF; cap at a large-but-finite loss so link
    // margins stay well-defined.
    return Decibel(60.0);
  }
  const double cm = thickness_m * 100.0;
  return Decibel(absorption_db_per_cm(m) * cm);
}

Decibel backing_loss(Material m, double gap_m, double frequency_hz) {
  const double peak = flush_backing_db(m);
  if (peak <= 0.0) return Decibel(0.0);
  // Decay scale: lambda/20. At 915 MHz this is ~16 mm, consistent with the
  // rule of thumb that ~1 inch of spacer rescues an on-metal tag.
  const double scale = wavelength_m(frequency_hz) / 20.0;
  const double gap = std::max(gap_m, 0.0);
  return Decibel(peak * std::exp(-gap / scale));
}

double reflection_coefficient(Material m) {
  switch (m) {
    case Material::Air: return 0.0;
    case Material::Foam: return 0.03;
    case Material::Cardboard: return 0.1;
    case Material::Plastic: return 0.15;
    case Material::Metal: return 0.95;
    case Material::Liquid: return 0.7;
    case Material::HumanBody: return 0.55;
  }
  return 0.0;
}

Decibel image_factor_gain(Material m, double gap_m, double sin_alpha,
                          double frequency_hz, double floor_db) {
  const double gamma = reflection_coefficient(m);
  if (gamma <= 0.0) return Decibel(0.0);
  const double k = 2.0 * std::numbers::pi / wavelength_m(frequency_hz);
  const double sa = std::clamp(sin_alpha, 0.0, 1.0);
  const double phase = 2.0 * k * std::max(gap_m, 0.0) * sa;
  // |1 - gamma * e^{-j phase}|: the image dipole is phase-inverted.
  const double re = 1.0 - gamma * std::cos(phase);
  const double im = gamma * std::sin(phase);
  const double f = std::sqrt(re * re + im * im);
  const double gain_db = 20.0 * std::log10(std::max(f, 1e-6));
  return Decibel(std::max(gain_db, floor_db));
}

bool is_reflective(Material m) {
  return m == Material::Metal || m == Material::Liquid || m == Material::HumanBody;
}

}  // namespace rfidsim::rf
