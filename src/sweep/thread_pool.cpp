#include "sweep/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"

namespace rfidsim::sweep {

namespace {

/// Pool-level registry hooks: queue depth (instantaneous) and the wall
/// time workers spend parked waiting for work (includes idle stretches
/// between sweeps — it measures the pool, not one sweep).
struct PoolMetrics {
  obs::Counter& tasks = obs::counter("sweep.pool.tasks");
  obs::Gauge& queue_depth = obs::gauge("sweep.pool.queue_depth");
  obs::Gauge& idle_s = obs::gauge("sweep.pool.worker_idle_seconds");
};

PoolMetrics& pool_metrics() {
  static PoolMetrics m;
  return m;
}

/// Per-lane accumulators, labelled by the worker's construction-time
/// index: busy (executing tasks), idle (parked), and queue-wait (the time
/// tasks this lane executed spent queued before dequeue). Shared across
/// pools — lane "0" of a later pool accumulates onto lane "0" of an
/// earlier one, the same convention the reader-labelled portal metrics
/// use.
struct LaneMetrics {
  obs::Gauge& busy_s;
  obs::Gauge& idle_s;
  obs::Gauge& wait_s;

  explicit LaneMetrics(const std::string& lane)
      : busy_s(obs::gauge("sweep.pool.lane_busy_seconds", {{"lane", lane}})),
        idle_s(obs::gauge("sweep.pool.lane_idle_seconds", {{"lane", lane}})),
        wait_s(obs::gauge("sweep.pool.lane_queue_wait_seconds", {{"lane", lane}})) {}
};

thread_local std::size_t t_lane = ThreadPool::kNotALane;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  }
  workers_.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers_.emplace_back([this, t] { worker_loop(t); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  const bool record = obs::hooks_enabled();
  PendingTask pending{std::move(task), record ? obs::trace_now_ns() : 0};
  std::size_t depth;
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(pending));
    ++in_flight_;
    depth = queue_.size();
  }
  if (record) {
    pool_metrics().tasks.add(1);
    pool_metrics().queue_depth.set(static_cast<double>(depth));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

std::size_t ThreadPool::current_lane() { return t_lane; }

void ThreadPool::worker_loop(std::size_t lane) {
  t_lane = lane;
  obs::prof::register_thread(static_cast<std::uint32_t>(lane));
  LaneMetrics* lane_metrics = nullptr;  // Registered on first recorded pass.
  const std::string lane_label = std::to_string(lane);
  for (;;) {
    PendingTask task;
    std::size_t depth;
    const bool record = obs::hooks_enabled();
    if (record && lane_metrics == nullptr) {
      lane_metrics = new LaneMetrics(lane_label);  // Refs are process-lived.
    }
    const auto park = std::chrono::steady_clock::now();
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {  // stopping_ with a drained queue.
        delete lane_metrics;
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      depth = queue_.size();
    }
    const auto dequeue = std::chrono::steady_clock::now();
    if (record) {
      pool_metrics().queue_depth.set(static_cast<double>(depth));
      const double idle = std::chrono::duration<double>(dequeue - park).count();
      pool_metrics().idle_s.add(idle);
      lane_metrics->idle_s.add(idle);
      if (task.enqueue_ns != 0) {
        const std::uint64_t now_ns = obs::trace_now_ns();
        if (now_ns > task.enqueue_ns) {
          lane_metrics->wait_s.add(
              static_cast<double>(now_ns - task.enqueue_ns) * 1e-9);
        }
      }
    }
    task.fn();
    if (record && lane_metrics != nullptr) {
      lane_metrics->busy_s.add(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - dequeue)
              .count());
    }
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
    }
    all_done_.notify_all();
  }
}

}  // namespace rfidsim::sweep
