#include "sweep/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace rfidsim::sweep {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  }
  workers_.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
    }
    all_done_.notify_all();
  }
}

}  // namespace rfidsim::sweep
