#include "sweep/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/metrics.hpp"

namespace rfidsim::sweep {

namespace {

/// Pool-level registry hooks: queue depth (instantaneous) and the wall
/// time workers spend parked waiting for work (includes idle stretches
/// between sweeps — it measures the pool, not one sweep).
struct PoolMetrics {
  obs::Counter& tasks = obs::counter("sweep.pool.tasks");
  obs::Gauge& queue_depth = obs::gauge("sweep.pool.queue_depth");
  obs::Gauge& idle_s = obs::gauge("sweep.pool.worker_idle_seconds");
};

PoolMetrics& pool_metrics() {
  static PoolMetrics m;
  return m;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  }
  workers_.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t depth;
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
    depth = queue_.size();
  }
  if (obs::hooks_enabled()) {
    pool_metrics().tasks.add(1);
    pool_metrics().queue_depth.set(static_cast<double>(depth));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    std::size_t depth;
    const bool record = obs::hooks_enabled();
    const auto park = std::chrono::steady_clock::now();
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue.
      task = std::move(queue_.front());
      queue_.pop_front();
      depth = queue_.size();
    }
    if (record) {
      pool_metrics().queue_depth.set(static_cast<double>(depth));
      pool_metrics().idle_s.add(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - park)
              .count());
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
    }
    all_done_.notify_all();
  }
}

}  // namespace rfidsim::sweep
