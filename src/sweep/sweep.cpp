#include "sweep/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rfidsim::sweep {

namespace {

/// Sweep-level registry hooks. Lane cell counts are tallied lane-locally
/// and flushed once per sweep, so the cell loop adds no shared-state
/// traffic; the histogram exposes lane imbalance (a lane that claimed far
/// fewer cells than count/lanes was starved or slow).
struct SweepMetrics {
  obs::Counter& sweeps = obs::counter("sweep.sweeps");
  obs::Counter& cells = obs::counter("sweep.cells");
  obs::Counter& lane_tasks = obs::counter("sweep.lane_tasks");
  obs::Histogram& cells_per_lane = obs::histogram(
      "sweep.cells_per_lane",
      obs::HistogramSpec{.first_upper_bound = 1.0, .growth = 4.0, .buckets = 10});
};

SweepMetrics& sweep_metrics() {
  static SweepMetrics m;
  return m;
}

}  // namespace

SweepEngine::SweepEngine(SweepOptions options) {
  std::size_t threads = options.threads;
  if (threads == 0) {
    threads = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  }
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
}

void SweepEngine::run(std::size_t count,
                      const std::function<void(std::size_t)>& body) {
  run(
      count, [](std::size_t) {},
      [&body](std::size_t cell, std::size_t) { body(cell); });
}

void SweepEngine::run(std::size_t count,
                      const std::function<void(std::size_t)>& setup,
                      const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  const obs::TraceSpan span("sweep.run");
  const bool record = obs::hooks_enabled();
  if (record) {
    sweep_metrics().sweeps.add(1);
    sweep_metrics().cells.add(count);
  }
  if (!pool_ || count == 1) {
    setup(1);
    for (std::size_t i = 0; i < count; ++i) body(i, 0);
    return;
  }

  // Pull-based distribution: each dispatched worker task claims CHUNKS of
  // contiguous cells off a shared counter until the grid is exhausted —
  // coarse-grained enough that lanes are not ping-ponging the counter's
  // cache line between every cell (fine-grained ingest batches made that
  // contention visible), fine-grained enough (8 chunks per lane) that an
  // unlucky lane stuck with slow cells still gets rebalanced. Which worker
  // claims which cell is unspecified — and irrelevant, per the determinism
  // contract: cells write only their own slots.
  const std::size_t lanes = std::min(pool_->thread_count(), count);
  setup(lanes);
  const std::size_t chunk = std::max<std::size_t>(1, count / (lanes * 8));
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    pool_->submit([next, count, chunk, lane, &body, record] {
      const obs::TraceSpan lane_span("sweep.lane");
      std::size_t claimed = 0;
      for (std::size_t base = next->fetch_add(chunk); base < count;
           base = next->fetch_add(chunk)) {
        const std::size_t end = std::min(base + chunk, count);
        for (std::size_t i = base; i < end; ++i) body(i, lane);
        claimed += end - base;
      }
      if (record) {
        sweep_metrics().lane_tasks.add(1);
        sweep_metrics().cells_per_lane.observe(static_cast<double>(claimed));
      }
    });
  }
  pool_->wait_idle();
}

SweepEngine& shared_engine() {
  static SweepEngine engine{SweepOptions{}};
  return engine;
}

void parallel_for(std::size_t count, const SweepOptions& options,
                  const std::function<void(std::size_t)>& body) {
  parallel_for(
      count, options, [](std::size_t) {},
      [&body](std::size_t cell, std::size_t) { body(cell); });
}

void parallel_for(std::size_t count, const SweepOptions& options,
                  const std::function<void(std::size_t)>& setup,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  if (options.threads == 0) {
    shared_engine().run(count, setup, body);
    return;
  }
  if (options.threads == 1 || count <= 1) {
    setup(1);
    for (std::size_t i = 0; i < count; ++i) body(i, 0);
    return;
  }
  SweepEngine dedicated{SweepOptions{.threads = options.threads}};
  dedicated.run(count, setup, body);
}

}  // namespace rfidsim::sweep
