// A small fixed-size thread pool.
//
// Workers are started once and reused across submissions, so sweeps that
// dispatch thousands of cells (a full paper-table Monte Carlo grid) pay the
// thread-creation cost once instead of per batch. The pool makes no
// ordering promises — determinism is the sweep layer's job (every cell
// derives all of its randomness from its own index, never from which
// worker runs it or when).
//
// Lanes: each worker owns a stable lane id — its index in the workers_
// vector, fixed at pool construction and reused for the pool's lifetime.
// Per-lane metrics (sweep.pool.lane_*_seconds{lane="N"}) and profiler
// sample tags both key off this id, so an attribution report and a folded
// profile dump name the same thread the same way.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rfidsim::sweep {

/// Fixed set of worker threads consuming a FIFO task queue.
class ThreadPool {
 public:
  /// Lane id reported by current_lane() on threads that are not pool
  /// workers (the orchestrating thread, test mains).
  static constexpr std::size_t kNotALane = static_cast<std::size_t>(-1);

  /// Starts `threads` workers; 0 means the hardware concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding work, then stops and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues one task. Tasks must not throw (a worker has nowhere to
  /// deliver the exception); wrap fallible work and capture errors by
  /// slot, the way parallel_for cells write into their own result index.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing (not merely
  /// been dequeued).
  void wait_idle();

  /// The calling thread's lane id: the worker's construction-time index
  /// for pool workers, kNotALane everywhere else. Stable for the worker's
  /// whole life — metric labels and profiler dumps agree on it.
  static std::size_t current_lane();

 private:
  /// A queued task plus its enqueue stamp, so the executing lane can
  /// attribute the task's time in queue (submit -> dequeue) to itself.
  struct PendingTask {
    std::function<void()> fn;
    std::uint64_t enqueue_ns = 0;
  };

  void worker_loop(std::size_t lane);

  std::vector<std::thread> workers_;
  std::deque<PendingTask> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;  ///< Queued + currently executing tasks.
  bool stopping_ = false;
};

}  // namespace rfidsim::sweep
