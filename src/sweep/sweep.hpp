// Deterministic parallel sweep engine.
//
// Every paper artifact is a Monte Carlo grid — scenarios x repetitions of
// a simulated pass — and the cells are mutually independent. This engine
// runs such grids across a thread pool under one hard contract:
//
//   DETERMINISM CONTRACT: the randomness of cell i is a pure function of
//   (root seed, i) — see cell_rng — and each cell writes only to its own
//   result slot. Thread count, scheduling order, and work stealing can
//   therefore never change a single simulated bit: sweep output is
//   byte-identical to the serial loop `for i: body(i)`.
//
// The serial reference (reliability::run_repeated) derives repetition i's
// generator as Rng(seed).fork(i); cell_rng is that same derivation, which
// is what makes the parallel and serial paths comparable byte for byte
// (tests/reliability/parallel_test.cpp holds the engine to it).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "common/rng.hpp"
#include "sweep/thread_pool.hpp"

namespace rfidsim::sweep {

/// Execution knobs of a sweep. Only wall-clock behaviour — never results —
/// depends on these.
struct SweepOptions {
  /// Worker threads; 0 means hardware concurrency, 1 forces the inline
  /// serial path (no pool involved at all).
  std::size_t threads = 0;
};

/// The per-cell generator of a sweep rooted at `seed`: a pure function of
/// its arguments, independent of scheduling. Identical to the serial
/// convention Rng(seed).fork(cell).
inline Rng cell_rng(std::uint64_t seed, std::uint64_t cell) {
  return Rng(seed).fork(cell);
}

/// Two-level variant for (scenario, repetition) grids: scenario s gets an
/// independent sub-stream, and repetition r within it forks exactly like a
/// single-scenario sweep of that sub-stream.
inline Rng grid_cell_rng(std::uint64_t seed, std::uint64_t scenario,
                         std::uint64_t repetition) {
  return cell_rng(cell_rng(seed, scenario).seed(), repetition);
}

/// Reusable engine: one thread pool, any number of sweeps.
class SweepEngine {
 public:
  explicit SweepEngine(SweepOptions options = {});

  std::size_t thread_count() const { return pool_ ? pool_->thread_count() : 1; }

  /// Invokes body(i) for every i in [0, count), spread over the pool.
  /// `body` must honour the determinism contract (derive randomness from i,
  /// write only slot i); it must not throw. Blocks until all cells finish.
  void run(std::size_t count, const std::function<void(std::size_t)>& body);

  /// Lane-aware variant: cells are pulled by `lanes = min(threads, count)`
  /// workers and the body receives the worker's lane index, so callers can
  /// reuse expensive per-worker state (e.g. one simulator per lane, with
  /// its warm static-geometry cache). `setup(lanes)` runs once, before any
  /// cell, on the calling thread. Per the determinism contract, lane state
  /// may only carry caches/buffers that cannot change results — never
  /// randomness.
  void run(std::size_t count, const std::function<void(std::size_t)>& setup,
           const std::function<void(std::size_t, std::size_t)>& body);

 private:
  std::unique_ptr<ThreadPool> pool_;  ///< Null for the single-thread engine.
};

/// Process-wide engine at hardware concurrency, started on first use.
/// Benches and estimators share it so a full bench run spins up one pool.
SweepEngine& shared_engine();

/// One-shot convenience: runs body over [0, count) with `options.threads`
/// workers. threads == 0 borrows the shared engine; an explicit thread
/// count gets a dedicated pool of exactly that many workers.
void parallel_for(std::size_t count, const SweepOptions& options,
                  const std::function<void(std::size_t)>& body);

/// Lane-aware one-shot (see SweepEngine::run): body(cell, lane).
void parallel_for(std::size_t count, const SweepOptions& options,
                  const std::function<void(std::size_t)>& setup,
                  const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace rfidsim::sweep
