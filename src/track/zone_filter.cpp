#include "track/zone_filter.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "common/error.hpp"
#include "scene/tag.hpp"

namespace rfidsim::track {

ZoneFilterResult filter_zone(const sys::EventLog& log, const ZoneFilterParams& params) {
  require(params.window_s > 0.0, "filter_zone: window must be positive");
  require(params.min_reads >= 1, "filter_zone: min_reads must be >= 1");

  struct PerTag {
    double peak_rssi = -1e9;
    std::vector<double> near_miss_times;  ///< Reads above the slack floor.
  };
  std::map<scene::TagId, PerTag> tags;
  const double near_floor = params.min_peak_rssi_dbm - params.near_miss_slack_db;
  for (const sys::ReadEvent& ev : log) {
    PerTag& t = tags[ev.tag];
    t.peak_rssi = std::max(t.peak_rssi, ev.rssi.value());
    if (ev.rssi.value() >= near_floor) t.near_miss_times.push_back(ev.time_s);
  }

  auto in_zone = [&](const PerTag& t) {
    if (t.peak_rssi >= params.min_peak_rssi_dbm) return true;
    // Edge dweller: enough near-threshold reads packed into one window.
    if (t.near_miss_times.size() < params.min_reads) return false;
    std::vector<double> ts = t.near_miss_times;
    std::sort(ts.begin(), ts.end());
    for (std::size_t i = 0; i + params.min_reads - 1 < ts.size(); ++i) {
      if (ts[i + params.min_reads - 1] - ts[i] <= params.window_s) return true;
    }
    return false;
  };

  ZoneFilterResult result;
  for (const sys::ReadEvent& ev : log) {
    (in_zone(tags.at(ev.tag)) ? result.in_zone : result.stray).push_back(ev);
  }
  return result;
}

std::unordered_set<scene::TagId> detect_background(
    const std::vector<sys::EventLog>& passes, std::size_t min_passes) {
  require(min_passes >= 1, "detect_background: min_passes must be >= 1");
  std::map<scene::TagId, std::size_t> seen_in;
  for (const sys::EventLog& log : passes) {
    std::unordered_set<scene::TagId> this_pass;
    for (const sys::ReadEvent& ev : log) this_pass.insert(ev.tag);
    for (const scene::TagId& tag : this_pass) ++seen_in[tag];
  }
  std::unordered_set<scene::TagId> background;
  for (const auto& [tag, count] : seen_in) {
    if (count >= min_passes) background.insert(tag);
  }
  return background;
}

sys::EventLog remove_background(const sys::EventLog& log,
                                const std::unordered_set<scene::TagId>& background) {
  sys::EventLog out;
  out.reserve(log.size());
  for (const sys::ReadEvent& ev : log) {
    if (!background.contains(ev.tag)) out.push_back(ev);
  }
  return out;
}

}  // namespace rfidsim::track
