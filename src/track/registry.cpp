#include "track/registry.hpp"

#include "common/error.hpp"

namespace rfidsim::track {

ObjectId ObjectRegistry::add_object(std::string name) {
  const ObjectId id{next_id_++};
  names_[id.value] = std::move(name);
  object_tags_[id.value] = {};
  order_.push_back(id);
  return id;
}

void ObjectRegistry::bind_tag(scene::TagId tag, ObjectId object) {
  require(names_.contains(object.value), "ObjectRegistry: unknown object id");
  const auto [it, inserted] = tag_to_object_.emplace(tag, object);
  require(inserted, "ObjectRegistry: tag is already bound to an object");
  object_tags_[object.value].push_back(tag);
}

std::optional<ObjectId> ObjectRegistry::object_of(scene::TagId tag) const {
  const auto it = tag_to_object_.find(tag);
  if (it == tag_to_object_.end()) return std::nullopt;
  return it->second;
}

std::vector<scene::TagId> ObjectRegistry::tags_of(ObjectId object) const {
  const auto it = object_tags_.find(object.value);
  return it == object_tags_.end() ? std::vector<scene::TagId>{} : it->second;
}

const std::string& ObjectRegistry::name_of(ObjectId object) const {
  static const std::string unknown = "?";
  const auto it = names_.find(object.value);
  return it == names_.end() ? unknown : it->second;
}

}  // namespace rfidsim::track
