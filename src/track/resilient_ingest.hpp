// Resilient event ingest: the armoured front door of the tracking stack.
//
// The paper's pipeline assumes every buffered read reaches the back end
// intact and in order. Production middleware delivers something worse:
// duplicated batches, bit-flipped EPCs, rows that no longer parse,
// records from a reader that silently died halfway through the shift.
// ResilientIngest absorbs all of it without throwing — malformed and
// implausible records are quarantined behind counters, transport
// duplicates collapse, out-of-order arrivals are re-sorted, and
// reader-silence gaps are detected and promoted to a *declared* degraded
// mode so the analytical R_C can be re-weighted over the antennas that
// are actually alive (reliability::expected_reliability_grid_degraded).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/monitor.hpp"
#include "system/event_io.hpp"
#include "system/events.hpp"
#include "track/registry.hpp"

namespace rfidsim::track {

/// Ingest policy knobs.
struct IngestConfig {
  /// Two reads of the same (tag, reader, antenna) closer than this are one
  /// transport duplicate, not two observations. Kept tight: legitimate
  /// re-reads of a moving tag are several round times (~20 ms+) apart.
  double dedup_window_s = 0.002;
  /// A reader silent for longer than this (inside the pass window) has a
  /// detected gap; a gap running to the end of the window declares the
  /// reader down.
  double silence_gap_s = 1.0;
  /// Plausibility band for RSSI; records outside it are quarantined.
  double min_rssi_dbm = -120.0;
  double max_rssi_dbm = 10.0;
  /// Known infrastructure shape; indices at or beyond these bounds are
  /// quarantined. 0 disables the check.
  std::size_t reader_count = 0;
  std::size_t antenna_count = 0;
  /// When set, reads of tags absent from the registry are quarantined —
  /// this is what actually catches bit-flipped EPCs.
  const ObjectRegistry* registry = nullptr;
};

/// One detected silence interval of one reader.
struct SilenceGap {
  std::size_t reader = 0;
  double begin_s = 0.0;
  double end_s = 0.0;
  bool to_window_end = false;  ///< Gap runs to the end of the pass window.
};

/// Everything the ingest stage can tell the rest of the pipeline.
struct IngestReport {
  /// Accepted events: validated, deduplicated, sorted by time.
  sys::EventLog events;
  /// Lenient-parser statistics (CSV path; zero on the in-memory path).
  sys::ParseStats parse;
  std::size_t accepted = 0;
  std::size_t duplicates = 0;    ///< Transport duplicates collapsed.
  std::size_t quarantined = 0;   ///< Implausible records set aside.
  std::size_t reordered = 0;     ///< Arrivals behind an already-seen time.
  /// First few quarantine reasons (capped, like ParseStats errors).
  std::vector<std::string> quarantine_samples;
  static constexpr std::size_t kMaxQuarantineSamples = 8;
  /// Detected per-reader silence gaps, in time order per reader.
  std::vector<SilenceGap> gaps;
  /// Readers declared down: silent through the end of the window (or the
  /// whole window) for at least silence_gap_s.
  std::vector<std::size_t> degraded_readers;

  /// Malformed rows + quarantined records, the "bad input" total.
  std::size_t rejected() const { return parse.rows_bad + quarantined; }
  /// True when the tracking analysis should switch to degraded mode.
  bool degraded() const { return !degraded_readers.empty(); }
};

/// Stateless ingest pipeline; one call digests one pass's feed.
class ResilientIngest {
 public:
  explicit ResilientIngest(IngestConfig config = {});

  /// Ingests an already-parsed event log covering the pass window
  /// [window_begin_s, window_end_s] (the window bounds the silence-gap
  /// scan). Never throws on record content.
  IngestReport ingest(const sys::EventLog& raw, double window_begin_s,
                      double window_end_s) const;

  /// Ingests a CSV feed via the lenient parser: malformed rows land in
  /// report.parse, surviving records go through the same validation as
  /// the in-memory path. Throws only if the header itself is wrong (a
  /// mis-wired feed, not a damaged one).
  IngestReport ingest_csv(std::istream& in, double window_begin_s,
                          double window_end_s) const;
  IngestReport ingest_csv(const std::string& csv, double window_begin_s,
                          double window_end_s) const;

  const IngestConfig& config() const { return config_; }

 private:
  IngestConfig config_;
};

/// Per-record plausibility validation — ingest()'s pass 1, exposed so
/// batch-granular consumers (the fleet feeds validate each delivered
/// upload batch before storing it) apply exactly the same rules without
/// re-running the whole pass pipeline. Returns false when the record
/// would be quarantined; `reason` (optional) receives the quarantine
/// reason text ingest() would have sampled.
bool validate_event(const sys::ReadEvent& ev, const IngestConfig& config,
                    double window_begin_s, double window_end_s,
                    std::string* reason = nullptr);

/// Summarises one ingested pass as a monitor observation, built purely
/// from what survived the middleware — the production-side counterpart of
/// sys::PortalSimulator::pass_observation (which reads ground truth).
/// Per-reader "rounds" are accepted-event counts: the ingest stage cannot
/// see inventory rounds, but relative event volume carries the same
/// degradation signal (a reader whose stream collapses against its peers
/// drifts, one that goes silent reports zero and trips the silence alert).
/// `objects_total` is the expected distinct-tag count for the window
/// (manifest or registry size); seen/identified counts are clamped to it.
/// Feedback-free: reads the report only.
obs::PassObservation monitor_observation(const IngestReport& report,
                                         std::size_t reader_count,
                                         std::size_t objects_total,
                                         double window_begin_s, double window_end_s);

}  // namespace rfidsim::track
