// RFID data-stream cleaning.
//
// Implementations of the correction techniques the paper cites as
// complementary to physical redundancy:
//  * sliding-window smoothing (Jeffery et al., "Adaptive cleaning for RFID
//    data streams", VLDB'06 [15]) — interpolate over short read gaps;
//  * route constraints (Inoue et al., ARES'06 [6]) — an object seen at
//    checkpoints k-1 and k+1 of a fixed route must have passed checkpoint k;
//  * accompany constraints (ibid.) — objects known to travel as a group
//    are inferred present when most of the group is seen.
// The cleaning ablation bench quantifies how much each recovers at a given
// raw read reliability, and how they compose with tag-level redundancy.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "scene/tag.hpp"
#include "system/events.hpp"
#include "track/registry.hpp"

namespace rfidsim::track {

/// Sliding-window smoother: a tag is considered present at time t if it was
/// read at least once in [t - window, t]. Converts a sparse event log into
/// per-tag presence intervals, bridging gaps shorter than the window.
class WindowSmoother {
 public:
  /// `window_s` must be positive.
  explicit WindowSmoother(double window_s);

  /// A maximal interval during which one tag is continuously "present".
  struct Presence {
    scene::TagId tag;
    double start_s = 0.0;
    double end_s = 0.0;
  };

  /// Computes smoothed presence intervals from a chronological event log.
  std::vector<Presence> smooth(const sys::EventLog& log) const;

  /// True if, after smoothing, `tag` is present at time `t_s`.
  bool present_at(const sys::EventLog& log, scene::TagId tag, double t_s) const;

  double window_s() const { return window_s_; }

 private:
  double window_s_;
};

/// Detection matrix over a fixed route: detections[checkpoint][object] for
/// `checkpoint_count` checkpoints in route order.
struct RouteObservations {
  std::size_t checkpoint_count = 0;
  std::vector<std::unordered_set<ObjectId>> detected;  ///< One set per checkpoint.
};

/// Route-constraint cleaner: objects move along the route monotonically, so
/// an object detected at any later checkpoint must have passed every
/// earlier one. Returns the corrected matrix; `recovered` counts the
/// inferred (previously missed) detections.
struct RouteCleanResult {
  RouteObservations corrected;
  std::size_t recovered = 0;
};
RouteCleanResult apply_route_constraint(const RouteObservations& observed);

/// Accompany-constraint cleaner: `groups` lists objects known to travel
/// together (e.g. items of one pallet). If at least `quorum` fraction of a
/// group is detected at a checkpoint, the rest of the group is inferred
/// present there too.
struct AccompanyCleanResult {
  std::unordered_set<ObjectId> corrected;  ///< Detected or inferred objects.
  std::size_t recovered = 0;
};
AccompanyCleanResult apply_accompany_constraint(
    const std::unordered_set<ObjectId>& detected,
    const std::vector<std::vector<ObjectId>>& groups, double quorum = 0.5);

}  // namespace rfidsim::track
