#include "track/resilient_ingest.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rfidsim::track {

namespace {

/// Per-(tag, reader, antenna) key for transport-duplicate collapsing.
struct StreamKey {
  std::uint64_t tag;
  std::size_t reader;
  std::size_t antenna;
  auto operator<=>(const StreamKey&) const = default;
};

/// Ingest registry hooks: one aggregate add per digested pass.
void record_ingest_metrics(const IngestReport& report) {
  static const struct Metrics {
    obs::Counter& passes = obs::counter("track.ingest.passes");
    obs::Counter& accepted = obs::counter("track.ingest.accepted");
    obs::Counter& duplicates = obs::counter("track.ingest.duplicates");
    obs::Counter& quarantined = obs::counter("track.ingest.quarantined");
    obs::Counter& reordered = obs::counter("track.ingest.reordered");
    obs::Counter& gaps = obs::counter("track.ingest.silence_gaps");
    obs::Counter& degraded_readers = obs::counter("track.ingest.degraded_readers");
    obs::Counter& degraded_passes = obs::counter("track.ingest.degraded_passes");
  } m;
  m.passes.add(1);
  m.accepted.add(report.accepted);
  m.duplicates.add(report.duplicates);
  m.quarantined.add(report.quarantined);
  m.reordered.add(report.reordered);
  m.gaps.add(report.gaps.size());
  m.degraded_readers.add(report.degraded_readers.size());
  if (report.degraded()) m.degraded_passes.add(1);
}

}  // namespace

bool validate_event(const sys::ReadEvent& ev, const IngestConfig& config,
                    double window_begin_s, double window_end_s,
                    std::string* reason) {
  const auto reject = [reason](std::string text) {
    if (reason != nullptr) *reason = std::move(text);
    return false;
  };
  if (!std::isfinite(ev.time_s) || !std::isfinite(ev.rssi.value())) {
    return reject("non-finite time or rssi");
  }
  if (ev.time_s < window_begin_s || ev.time_s > window_end_s) {
    return reject("time " + std::to_string(ev.time_s) + " outside pass window");
  }
  if (ev.rssi.value() < config.min_rssi_dbm || ev.rssi.value() > config.max_rssi_dbm) {
    return reject("implausible rssi " + std::to_string(ev.rssi.value()) + " dBm");
  }
  if (config.reader_count > 0 && ev.reader_index >= config.reader_count) {
    return reject("reader index " + std::to_string(ev.reader_index) + " out of range");
  }
  if (config.antenna_count > 0 && ev.antenna_index >= config.antenna_count) {
    return reject("antenna index " + std::to_string(ev.antenna_index) +
                  " out of range");
  }
  if (config.registry != nullptr && !config.registry->object_of(ev.tag).has_value()) {
    return reject("unknown tag " + std::to_string(ev.tag.value));
  }
  return true;
}

ResilientIngest::ResilientIngest(IngestConfig config) : config_(std::move(config)) {
  require(config_.dedup_window_s >= 0.0,
          "ResilientIngest: dedup window must be non-negative");
  require(config_.silence_gap_s > 0.0,
          "ResilientIngest: silence gap threshold must be positive");
  require(config_.min_rssi_dbm < config_.max_rssi_dbm,
          "ResilientIngest: RSSI plausibility band is inverted");
}

IngestReport ResilientIngest::ingest(const sys::EventLog& raw, double window_begin_s,
                                     double window_end_s) const {
  const obs::TraceSpan span("track.ingest");
  require(window_end_s >= window_begin_s, "ResilientIngest: inverted pass window");

  IngestReport report;
  auto quarantine = [&report](const std::string& reason) {
    ++report.quarantined;
    if (report.quarantine_samples.size() < IngestReport::kMaxQuarantineSamples) {
      report.quarantine_samples.push_back(reason);
    }
  };

  // Pass 1 — validate each record on its own (validate_event holds the
  // rules); count arrival-order inversions against the highest valid time
  // seen so far.
  sys::EventLog valid;
  valid.reserve(raw.size());
  double high_water = -std::numeric_limits<double>::infinity();
  std::string reason;
  for (const sys::ReadEvent& ev : raw) {
    if (!validate_event(ev, config_, window_begin_s, window_end_s, &reason)) {
      quarantine(reason);
      continue;
    }
    if (ev.time_s < high_water) ++report.reordered;
    high_water = std::max(high_water, ev.time_s);
    valid.push_back(ev);
  }

  // Pass 2 — restore chronological order, then collapse transport
  // duplicates per (tag, reader, antenna) stream.
  std::stable_sort(valid.begin(), valid.end(),
                   [](const sys::ReadEvent& a, const sys::ReadEvent& b) {
                     return a.time_s < b.time_s;
                   });
  std::map<StreamKey, double> last_accepted;
  for (const sys::ReadEvent& ev : valid) {
    const StreamKey key{ev.tag.value, ev.reader_index, ev.antenna_index};
    const auto it = last_accepted.find(key);
    if (it != last_accepted.end() && ev.time_s - it->second <= config_.dedup_window_s) {
      ++report.duplicates;
      continue;
    }
    last_accepted[key] = ev.time_s;
    report.events.push_back(ev);
  }
  report.accepted = report.events.size();

  // Pass 3 — per-reader silence scan over the accepted stream. A reader
  // we know exists (reader_count set) that never speaks is one long gap.
  const std::size_t reader_count =
      config_.reader_count > 0
          ? config_.reader_count
          : (report.events.empty()
                 ? 0
                 : 1 + std::max_element(report.events.begin(), report.events.end(),
                                        [](const auto& a, const auto& b) {
                                          return a.reader_index < b.reader_index;
                                        })
                           ->reader_index);
  std::vector<std::vector<double>> times(reader_count);
  for (const sys::ReadEvent& ev : report.events) {
    times[ev.reader_index].push_back(ev.time_s);
  }
  for (std::size_t r = 0; r < reader_count; ++r) {
    double cursor = window_begin_s;
    for (double t : times[r]) {
      if (t - cursor > config_.silence_gap_s) {
        report.gaps.push_back({r, cursor, t, false});
      }
      cursor = t;
    }
    if (window_end_s - cursor > config_.silence_gap_s) {
      report.gaps.push_back({r, cursor, window_end_s, true});
      report.degraded_readers.push_back(r);
    }
  }
  if (obs::hooks_enabled()) record_ingest_metrics(report);
  return report;
}

IngestReport ResilientIngest::ingest_csv(std::istream& in, double window_begin_s,
                                         double window_end_s) const {
  sys::ParseStats parse;
  const sys::EventLog raw = sys::read_csv(in, sys::ParseMode::Lenient, &parse);
  IngestReport report = ingest(raw, window_begin_s, window_end_s);
  report.parse = std::move(parse);
  return report;
}

IngestReport ResilientIngest::ingest_csv(const std::string& csv,
                                         double window_begin_s,
                                         double window_end_s) const {
  std::istringstream in(csv);
  return ingest_csv(in, window_begin_s, window_end_s);
}

obs::PassObservation monitor_observation(const IngestReport& report,
                                         std::size_t reader_count,
                                         std::size_t objects_total,
                                         double window_begin_s, double window_end_s) {
  obs::PassObservation out;
  out.window_begin_s = window_begin_s;
  out.window_end_s = window_end_s;
  out.objects_total = objects_total;
  out.readers.resize(reader_count);
  std::set<std::uint64_t> all;
  std::vector<std::set<std::uint64_t>> per_reader(reader_count);
  for (const sys::ReadEvent& ev : report.events) {
    all.insert(ev.tag.value);
    if (ev.reader_index < reader_count) {
      per_reader[ev.reader_index].insert(ev.tag.value);
      ++out.readers[ev.reader_index].rounds;
    }
  }
  out.objects_identified = std::min<std::uint64_t>(all.size(), objects_total);
  for (std::size_t r = 0; r < reader_count; ++r) {
    out.readers[r].objects_seen =
        std::min<std::uint64_t>(per_reader[r].size(), objects_total);
  }
  return out;
}

}  // namespace rfidsim::track
