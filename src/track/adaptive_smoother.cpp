#include "track/adaptive_smoother.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/error.hpp"

namespace rfidsim::track {

AdaptiveSmoother::AdaptiveSmoother(Params params) : params_(params) {
  require(params_.epoch_s > 0.0, "AdaptiveSmoother: epoch must be positive");
  require(params_.delta > 0.0 && params_.delta < 1.0,
          "AdaptiveSmoother: delta must be in (0, 1)");
  require(params_.min_window_s > 0.0 && params_.max_window_s >= params_.min_window_s,
          "AdaptiveSmoother: window clamp must be ordered and positive");
}

double AdaptiveSmoother::window_for(const std::vector<double>& read_times_s) const {
  if (read_times_s.size() < 2) return params_.max_window_s;
  const auto [lo, hi] = std::minmax_element(read_times_s.begin(), read_times_s.end());
  const double span = *hi - *lo;
  const double epochs_total = std::max(span / params_.epoch_s, 1.0);

  // Epoch-quantized read rate: distinct occupied epochs over total epochs.
  std::size_t occupied = 0;
  long long last_epoch = -1;
  std::vector<double> sorted = read_times_s;
  std::sort(sorted.begin(), sorted.end());
  for (double t : sorted) {
    const auto epoch = static_cast<long long>((t - *lo) / params_.epoch_s);
    if (epoch != last_epoch) {
      ++occupied;
      last_epoch = epoch;
    }
  }
  const double p = std::clamp(static_cast<double>(occupied) / (epochs_total + 1.0),
                              1e-6, 1.0 - 1e-6);

  // Never go below two epochs: a window shorter than the sampling grain
  // splits even a perfectly steady stream on rounding noise.
  const double w_epochs =
      std::max(std::log(params_.delta) / std::log(1.0 - p), 2.0);
  return std::clamp(w_epochs * params_.epoch_s, params_.min_window_s,
                    params_.max_window_s);
}

std::unordered_map<scene::TagId, double> AdaptiveSmoother::window_sizes(
    const sys::EventLog& log) const {
  std::map<scene::TagId, std::vector<double>> times;
  for (const sys::ReadEvent& ev : log) times[ev.tag].push_back(ev.time_s);
  std::unordered_map<scene::TagId, double> windows;
  for (const auto& [tag, ts] : times) windows[tag] = window_for(ts);
  return windows;
}

std::vector<WindowSmoother::Presence> AdaptiveSmoother::smooth(
    const sys::EventLog& log) const {
  std::map<scene::TagId, std::vector<double>> times;
  for (const sys::ReadEvent& ev : log) times[ev.tag].push_back(ev.time_s);

  std::vector<WindowSmoother::Presence> result;
  for (auto& [tag, ts] : times) {
    const double window = window_for(ts);
    std::sort(ts.begin(), ts.end());
    WindowSmoother::Presence cur{tag, ts.front(), ts.front()};
    for (double t : ts) {
      if (t - cur.end_s <= window) {
        cur.end_s = t;
      } else {
        result.push_back(cur);
        cur = WindowSmoother::Presence{tag, t, t};
      }
    }
    result.push_back(cur);
  }
  return result;
}

}  // namespace rfidsim::track
