#include "track/manifest.hpp"

#include <algorithm>

namespace rfidsim::track {

namespace {

void sort_by_id(std::vector<ObjectId>& objects) {
  std::sort(objects.begin(), objects.end(),
            [](const ObjectId& a, const ObjectId& b) { return a.value < b.value; });
}

}  // namespace

ManifestReport verify_manifest(const Manifest& manifest, const PassReport& pass) {
  ManifestReport report;
  for (const ObjectId& expected : manifest.expected) {
    if (pass.objects_identified.contains(expected)) {
      report.confirmed.push_back(expected);
    } else {
      report.missing.push_back(expected);
    }
  }
  for (const ObjectId& seen : pass.objects_identified) {
    if (!manifest.expected.contains(seen)) {
      report.unexpected.push_back(seen);
    }
  }
  sort_by_id(report.confirmed);
  sort_by_id(report.missing);
  sort_by_id(report.unexpected);
  return report;
}

GateAction decide_gate(const AccessPolicy& policy, const PassReport& pass) {
  if (pass.objects_identified.empty()) {
    return policy.alarm_on_unidentified ? GateAction::Alarm : GateAction::Ignore;
  }
  bool any_authorized = false;
  for (const ObjectId& obj : pass.objects_identified) {
    if (policy.authorized.contains(obj)) {
      any_authorized = true;
    } else {
      return GateAction::Alarm;  // An unauthorized presence dominates.
    }
  }
  return any_authorized ? GateAction::Open : GateAction::Ignore;
}

}  // namespace rfidsim::track
