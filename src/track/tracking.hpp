// Tracking logic: from raw read events to object identifications.
//
// Implements the paper's two reliability notions over an event log:
//  * read reliability  — was a given *tag* seen at all during the pass?
//  * tracking reliability — was a given *object* identified, i.e. was at
//    least one of its tags seen? (§2.1: the system-level definition.)
// Plus the per-tag/per-object summaries the measurement sections report.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "scene/tag.hpp"
#include "system/events.hpp"
#include "track/registry.hpp"

namespace rfidsim::track {

/// Outcome of analysing one pass.
struct PassReport {
  /// Tags seen at least once.
  std::unordered_set<scene::TagId> tags_seen;
  /// Objects with >= 1 tag seen.
  std::unordered_set<ObjectId> objects_identified;
  /// Read count per tag (duplicates collapse here).
  std::unordered_map<scene::TagId, std::size_t> reads_per_tag;
  /// First read time per object (the portal's detection latency).
  std::unordered_map<ObjectId, double> first_seen_s;
};

/// Analyses event logs against a registry.
class TrackingAnalyzer {
 public:
  /// The analyzer references the registry; it must outlive the analyzer.
  explicit TrackingAnalyzer(const ObjectRegistry& registry) : registry_(registry) {}

  /// Digests one pass's event log.
  PassReport analyze(const sys::EventLog& log) const;

  /// True if `object` was identified in `log`.
  bool identified(const sys::EventLog& log, ObjectId object) const;

  /// Fraction of the registry's objects identified in `log`.
  double tracking_fraction(const sys::EventLog& log) const;

  /// Fraction of the registry's tags read at least once in `log`.
  double read_fraction(const sys::EventLog& log) const;

 private:
  const ObjectRegistry& registry_;
};

}  // namespace rfidsim::track
