// Back-end actions: manifest verification and gate decisions.
//
// Paper §2: "The back-end system implements the logic and actions for when
// a tag is identified. The logic can be as simple as opening a door,
// setting off an alarm, updating a database, or complicated, such as an
// integrated management and monitoring for shipment tracking." This module
// implements the two archetypes:
//   * manifest verification — does the pass match the shipping notice?
//     (the supply-chain action; its false-alarm rate is exactly where read
//     reliability hurts), and
//   * gate decisions — open/alarm/ignore per identified object (the
//     access-control action of the human-tracking scenarios).
#pragma once

#include <unordered_set>
#include <vector>

#include "track/registry.hpp"
#include "track/tracking.hpp"

namespace rfidsim::track {

/// The advance shipping notice: which objects the pass SHOULD contain.
struct Manifest {
  std::unordered_set<ObjectId> expected;
};

/// Verification outcome for one pass.
struct ManifestReport {
  std::vector<ObjectId> confirmed;   ///< Expected and seen.
  std::vector<ObjectId> missing;     ///< Expected, not seen (false alarm if
                                     ///< actually on the truck — the cost of
                                     ///< imperfect read reliability).
  std::vector<ObjectId> unexpected;  ///< Seen, not on the manifest.

  bool complete() const { return missing.empty(); }
  bool clean() const { return missing.empty() && unexpected.empty(); }
};

/// Compares a pass against a manifest. Objects are sorted by id for
/// deterministic reporting.
ManifestReport verify_manifest(const Manifest& manifest, const PassReport& pass);

/// Access-control policy for a gate.
struct AccessPolicy {
  std::unordered_set<ObjectId> authorized;
  /// Whether an unidentified pass (no tags read at all) raises an alarm
  /// (secure area) or is ignored (logging-only deployment).
  bool alarm_on_unidentified = true;
};

/// The gate's possible actions, in increasing severity.
enum class GateAction { Ignore, Open, Alarm };

/// Decides the gate action for one pass: Open if at least one authorized
/// object was identified and nothing unauthorized was; Alarm if any
/// unauthorized object was identified (or nothing was identified and the
/// policy says so); Ignore otherwise.
GateAction decide_gate(const AccessPolicy& policy, const PassReport& pass);

}  // namespace rfidsim::track
