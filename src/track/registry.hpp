// Tag-to-object registry.
//
// The paper's system-level definition of tracking reliability "obviates a
// one-to-one mapping between a tag and an object": an object may carry
// several tags, and a person may be identified via any tagged possession.
// The registry is that many-to-one mapping, owned by the back end.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "scene/tag.hpp"

namespace rfidsim::track {

/// Strongly-typed object (or person) identifier.
struct ObjectId {
  std::uint64_t value = 0;
  constexpr auto operator<=>(const ObjectId&) const = default;
};

/// Many-to-one mapping from tags to the objects that carry them.
class ObjectRegistry {
 public:
  /// Registers an object; returns its id. Names are for reporting only and
  /// need not be unique.
  ObjectId add_object(std::string name);

  /// Associates a tag with an object. A tag can belong to at most one
  /// object; re-binding an already-bound tag throws ConfigError.
  void bind_tag(scene::TagId tag, ObjectId object);

  /// The object carrying `tag`, if any.
  std::optional<ObjectId> object_of(scene::TagId tag) const;

  /// All tags bound to `object` (empty if none / unknown).
  std::vector<scene::TagId> tags_of(ObjectId object) const;

  /// Display name of an object ("?" if unknown).
  const std::string& name_of(ObjectId object) const;

  /// All registered objects, in registration order.
  const std::vector<ObjectId>& objects() const { return order_; }

  std::size_t object_count() const { return order_.size(); }
  std::size_t tag_count() const { return tag_to_object_.size(); }

 private:
  std::unordered_map<scene::TagId, ObjectId> tag_to_object_;
  std::unordered_map<std::uint64_t, std::string> names_;
  std::unordered_map<std::uint64_t, std::vector<scene::TagId>> object_tags_;
  std::vector<ObjectId> order_;
  std::uint64_t next_id_ = 1;
};

}  // namespace rfidsim::track

template <>
struct std::hash<rfidsim::track::ObjectId> {
  std::size_t operator()(const rfidsim::track::ObjectId& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value);
  }
};
