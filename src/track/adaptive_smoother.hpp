// Adaptive sliding-window smoothing (SMURF-style).
//
// The paper cites Jeffery et al., "Adaptive cleaning for RFID data
// streams" (VLDB'06, reference [15]): a fixed smoothing window either
// leaves dropout gaps (too short) or blurs true departures (too long), and
// the right size depends on each tag's observed read rate. This is the
// statistical version of WindowSmoother: per tag, reads are modelled as
// Bernoulli samples per epoch with rate p; the window is sized so that a
// *present* tag produces at least one read per window with probability
// 1 - delta:
//     P(no read in w epochs | present) = (1 - p)^w <= delta
//     =>  w >= ln(delta) / ln(1 - p).
// Tags the portal reads often get tight windows (responsive to true
// departures); marginal tags get wide ones (robust to dropouts).
#pragma once

#include <unordered_map>
#include <vector>

#include "scene/tag.hpp"
#include "system/events.hpp"
#include "track/cleaning.hpp"

namespace rfidsim::track {

/// SMURF-style adaptive smoother.
class AdaptiveSmoother {
 public:
  struct Params {
    /// Epoch length: one reader interrogation opportunity (~ a round).
    double epoch_s = 0.05;
    /// Acceptable probability of declaring a present tag absent.
    double delta = 0.05;
    /// Window clamp, in seconds.
    double min_window_s = 0.05;
    double max_window_s = 5.0;
  };

  AdaptiveSmoother() = default;
  explicit AdaptiveSmoother(Params params);

  /// Per-tag window chosen for this log (diagnostic + testable): the
  /// epoch-quantized read rate drives the formula above.
  std::unordered_map<scene::TagId, double> window_sizes(const sys::EventLog& log) const;

  /// Smooths the log: like WindowSmoother::smooth but with the per-tag
  /// adaptive window.
  std::vector<WindowSmoother::Presence> smooth(const sys::EventLog& log) const;

  const Params& params() const { return params_; }

 private:
  /// Window (seconds) for a tag with reads at the given times.
  double window_for(const std::vector<double>& read_times_s) const;

  Params params_{};
};

}  // namespace rfidsim::track
