#include "track/tracking.hpp"

namespace rfidsim::track {

PassReport TrackingAnalyzer::analyze(const sys::EventLog& log) const {
  PassReport report;
  for (const sys::ReadEvent& ev : log) {
    report.tags_seen.insert(ev.tag);
    ++report.reads_per_tag[ev.tag];
    if (const auto object = registry_.object_of(ev.tag)) {
      report.objects_identified.insert(*object);
      const auto it = report.first_seen_s.find(*object);
      if (it == report.first_seen_s.end() || ev.time_s < it->second) {
        report.first_seen_s[*object] = ev.time_s;
      }
    }
  }
  return report;
}

bool TrackingAnalyzer::identified(const sys::EventLog& log, ObjectId object) const {
  for (const sys::ReadEvent& ev : log) {
    if (registry_.object_of(ev.tag) == object) return true;
  }
  return false;
}

double TrackingAnalyzer::tracking_fraction(const sys::EventLog& log) const {
  if (registry_.object_count() == 0) return 0.0;
  const PassReport report = analyze(log);
  return static_cast<double>(report.objects_identified.size()) /
         static_cast<double>(registry_.object_count());
}

double TrackingAnalyzer::read_fraction(const sys::EventLog& log) const {
  if (registry_.tag_count() == 0) return 0.0;
  const PassReport report = analyze(log);
  return static_cast<double>(report.tags_seen.size()) /
         static_cast<double>(registry_.tag_count());
}

}  // namespace rfidsim::track
