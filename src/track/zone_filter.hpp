// False-positive (stray-read) filtering.
//
// Paper §2.1: "it is also possible to get false positive reads, where RFID
// tags might be read from outside the region normally associated with the
// antenna, leading to a misbelief that the object is near the antenna."
// The paper dismisses them operationally ("increase the distance between
// antennas and/or decrease the power output"); deployments that cannot
// re-space their antennas filter instead.
//
// Per-read RSSI does NOT separate lanes: an in-zone tag is read throughout
// its pass, including weak far-approach reads, while a stray only gets
// read on upward fading spikes — the two per-read distributions overlap
// almost completely (this repo's false-positive bench demonstrates it).
// What does separate them is the per-tag *peak*: a tag that truly crossed
// the zone always has a strong closest-approach read. ZoneFilter therefore
// classifies whole tags, not reads.
#pragma once

#include <cstddef>
#include <unordered_set>
#include <vector>

#include "scene/tag.hpp"
#include "system/events.hpp"

namespace rfidsim::track {

/// Filtering thresholds.
struct ZoneFilterParams {
  /// A tag whose strongest read reaches this RSSI passed through the zone.
  double min_peak_rssi_dbm = -50.0;
  /// Fallback for tags that dwell at the zone edge without a strong peak:
  /// at least `min_reads` reads no weaker than
  /// (min_peak_rssi_dbm - near_miss_slack_db) within one `window_s` span.
  std::size_t min_reads = 3;
  double near_miss_slack_db = 5.0;
  double window_s = 1.0;
};

/// Result: the log split by per-tag classification.
struct ZoneFilterResult {
  sys::EventLog in_zone;  ///< All reads of tags judged in-zone.
  sys::EventLog stray;    ///< All reads of tags judged outside.
};

/// Applies the per-tag classification described above.
ZoneFilterResult filter_zone(const sys::EventLog& log, const ZoneFilterParams& params = {});

/// Cross-pass background detection — the robust stray filter.
///
/// Within one pass, a parked pallet downrange is RF-indistinguishable from
/// weak in-zone traffic (the false-positive bench demonstrates the RSSI
/// overlap). Across passes it is trivial: legitimate traffic consists of
/// fresh EPCs that appear once; parked inventory answers every pass.
/// Returns the tags seen in at least `min_passes` of the given consecutive
/// pass logs — the "background list" real middleware maintains.
std::unordered_set<scene::TagId> detect_background(
    const std::vector<sys::EventLog>& passes, std::size_t min_passes = 2);

/// Drops all reads of the given background tags from a log.
sys::EventLog remove_background(const sys::EventLog& log,
                                const std::unordered_set<scene::TagId>& background);

}  // namespace rfidsim::track
