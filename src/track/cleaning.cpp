#include "track/cleaning.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace rfidsim::track {

WindowSmoother::WindowSmoother(double window_s) : window_s_(window_s) {
  require(window_s > 0.0, "WindowSmoother: window must be positive");
}

std::vector<WindowSmoother::Presence> WindowSmoother::smooth(
    const sys::EventLog& log) const {
  // Group read times per tag (log is chronological; keep per-tag order).
  std::map<scene::TagId, std::vector<double>> times;
  for (const sys::ReadEvent& ev : log) times[ev.tag].push_back(ev.time_s);

  std::vector<Presence> result;
  for (auto& [tag, ts] : times) {
    std::sort(ts.begin(), ts.end());
    Presence cur{tag, ts.front(), ts.front()};
    for (double t : ts) {
      if (t - cur.end_s <= window_s_) {
        cur.end_s = t;
      } else {
        result.push_back(cur);
        cur = Presence{tag, t, t};
      }
    }
    result.push_back(cur);
  }
  return result;
}

bool WindowSmoother::present_at(const sys::EventLog& log, scene::TagId tag,
                                double t_s) const {
  for (const sys::ReadEvent& ev : log) {
    if (ev.tag == tag && ev.time_s <= t_s && t_s - ev.time_s <= window_s_) return true;
  }
  return false;
}

RouteCleanResult apply_route_constraint(const RouteObservations& observed) {
  require(observed.detected.size() == observed.checkpoint_count,
          "apply_route_constraint: detected size must equal checkpoint_count");
  RouteCleanResult result;
  result.corrected = observed;

  // Sweep back to front: anything seen at checkpoint k is inferred at every
  // checkpoint before k.
  std::unordered_set<ObjectId> seen_later;
  for (std::size_t k = observed.checkpoint_count; k-- > 0;) {
    for (const ObjectId& obj : seen_later) {
      if (result.corrected.detected[k].insert(obj).second) ++result.recovered;
    }
    for (const ObjectId& obj : observed.detected[k]) seen_later.insert(obj);
  }
  return result;
}

AccompanyCleanResult apply_accompany_constraint(
    const std::unordered_set<ObjectId>& detected,
    const std::vector<std::vector<ObjectId>>& groups, double quorum) {
  require(quorum > 0.0 && quorum <= 1.0,
          "apply_accompany_constraint: quorum must be in (0, 1]");
  AccompanyCleanResult result;
  result.corrected = detected;
  for (const auto& group : groups) {
    if (group.empty()) continue;
    std::size_t hits = 0;
    for (const ObjectId& obj : group) {
      if (detected.contains(obj)) ++hits;
    }
    const double fraction = static_cast<double>(hits) / static_cast<double>(group.size());
    if (hits > 0 && fraction >= quorum) {
      for (const ObjectId& obj : group) {
        if (result.corrected.insert(obj).second) ++result.recovered;
      }
    }
  }
  return result;
}

}  // namespace rfidsim::track
