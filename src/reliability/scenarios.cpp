#include "reliability/scenarios.hpp"

#include <cmath>
#include <memory>
#include <utility>

#include "common/error.hpp"

namespace rfidsim::reliability {

namespace {

using scene::BodySpot;
using scene::BoxFace;
using scene::Entity;
using scene::Tag;
using scene::TagId;
using scene::TagMount;
using rfidsim::Vec3;

/// Boresight height shared by all portal antennas.
constexpr double kAntennaHeightM = 1.0;

/// Pose for an entity travelling along +x (the scenes' lane convention).
Pose lane_pose(const Vec3& position) {
  Pose p;
  p.position = position;
  p.frame.forward = {1.0, 0.0, 0.0};
  p.frame.up = {0.0, 0.0, 1.0};
  return p;
}

/// Places `count` portal antennas around a lane whose near edge is
/// `near_edge_y` from the lane centreline. One antenna sits on the +y side
/// at near_edge_y + lane_distance (the paper's single-antenna geometry).
/// Two antennas form a facing pair 2 m apart ("two area antennas placed at
/// a distance of 2 meters from each other", §4) with the lane centred
/// between them.
void add_portal_antennas(scene::Scene& s, std::size_t count, double near_edge_y,
                         double lane_distance_m) {
  require(count >= 1 && count <= 2, "scenario: antenna_count must be 1 or 2");
  if (count == 1) {
    const double y0 = near_edge_y + lane_distance_m;
    s.antennas.push_back(
        scene::Scene::make_antenna({0.0, y0, kAntennaHeightM}, {0.0, -1.0, 0.0}));
    return;
  }
  require(near_edge_y < 1.0, "scenario: lane too wide for a 2 m portal");
  s.antennas.push_back(
      scene::Scene::make_antenna({0.0, 1.0, kAntennaHeightM}, {0.0, -1.0, 0.0}));
  s.antennas.push_back(
      scene::Scene::make_antenna({0.0, -1.0, kAntennaHeightM}, {0.0, 1.0, 0.0}));
}

}  // namespace

sys::PortalConfig make_portal_config(const CalibrationProfile& cal,
                                     const PortalOptions& options,
                                     std::size_t scene_antenna_count,
                                     double pass_duration_s) {
  require(options.reader_count >= 1, "make_portal_config: need at least one reader");
  require(scene_antenna_count >= 1, "make_portal_config: need at least one antenna");
  require(options.reader_count <= scene_antenna_count,
          "make_portal_config: more readers than antennas");

  sys::PortalConfig portal;
  portal.evaluator = cal.evaluator;
  portal.shadow_sigma_db = cal.shadow_sigma_db;
  portal.shadow_coherence_m = cal.shadow_coherence_m;
  portal.fast_sigma_db = cal.fast_sigma_db;
  portal.pass_sigma_db = cal.pass_sigma_db;
  portal.interference = cal.interference;
  portal.start_time_s = 0.0;
  portal.end_time_s = pass_duration_s;

  // Split antennas round-robin across readers; assign channels.
  const auto channels =
      gen2::ReaderInterference::assign_channels(options.reader_count,
                                                options.dense_reader_mode);
  for (std::size_t r = 0; r < options.reader_count; ++r) {
    sys::ReaderConfig rc;
    rc.radio = cal.radio;
    rc.inventory = cal.inventory;
    rc.inventory.mpr_capacity = options.mpr_capacity;
    rc.strategy = options.strategy;
    rc.antenna_dwell_s = cal.antenna_dwell_s;
    rc.channel = channels[r];
    rc.dense_reader_mode = options.dense_reader_mode;
    for (std::size_t a = r; a < scene_antenna_count; a += options.reader_count) {
      rc.antenna_indices.push_back(a);
    }
    portal.readers.push_back(std::move(rc));
  }
  return portal;
}

Scenario make_read_range_scenario(double distance_m, const CalibrationProfile& cal) {
  require(distance_m > 0.0, "make_read_range_scenario: distance must be positive");
  Scenario sc;
  sc.description = "read range @ " + std::to_string(distance_m) + " m";

  // 20 tags in a 5 x 4 plane grid, pitch 12.5 cm horizontally and 20 cm
  // vertically (paper Fig. 1), all parallel to the antenna plane, mounted
  // on an RF-transparent fixture.
  Entity fixture("tag grid", std::monostate{}, rf::Material::Air,
                 std::make_unique<scene::StaticTrajectory>(lane_pose({0.0, 0.0, 0.0})));
  std::uint64_t next_id = 1;
  const int cols = 5;
  const int rows = 4;
  const double dx = 0.125;
  const double dz = 0.20;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      TagMount m;
      m.local_position = {(c - (cols - 1) / 2.0) * dx, 0.0,
                          kAntennaHeightM + (r - (rows - 1) / 2.0) * dz};
      m.local_patch_normal = {0.0, 1.0, 0.0};  // Facing the antenna.
      m.local_dipole_axis = {1.0, 0.0, 0.0};   // Horizontal.
      m.backing_material = rf::Material::Foam;
      m.backing_gap_m = 0.01;
      fixture.add_tag(Tag{TagId{next_id++}, m});
    }
  }

  sc.scene.entities.push_back(std::move(fixture));
  sc.scene.antennas.push_back(scene::Scene::make_antenna(
      {0.0, distance_m, kAntennaHeightM}, {0.0, -1.0, 0.0}));

  // Registry: each tag is its own "object" so read and tracking fractions
  // coincide.
  for (std::uint64_t id = 1; id < next_id; ++id) {
    const auto obj = sc.registry.add_object("tag " + std::to_string(id));
    sc.registry.bind_tag(TagId{id}, obj);
  }

  PortalOptions options;  // Single antenna, single reader.
  // "A single read was performed each time" (§3): one reader-initiated
  // inventory cycle, a ~0.3 s window.
  sc.portal = make_portal_config(cal, options, sc.scene.antennas.size(),
                                 /*pass_duration_s=*/0.3);
  // Bench-fixture mounting: far less pass-to-pass tag variation than tags
  // applied to goods or worn by people.
  sc.portal.pass_sigma_db = 1.5;
  return sc;
}

Scenario make_intertag_scenario(double spacing_m, const TagOrientation& orientation,
                                const CalibrationProfile& cal, rf::TagDesign design) {
  require(spacing_m >= 0.0, "make_intertag_scenario: spacing must be >= 0");
  Scenario sc;
  sc.description = "inter-tag spacing " + std::to_string(spacing_m * 1000.0) +
                   " mm, orientation case " + std::to_string(orientation.case_number);

  // 10 parallel tags on a cardboard box riding a cart at 1 m/s; pass from
  // x = -2.5 m to +2.5 m with the antenna abeam at x = 0.
  const double speed = 1.0;
  const double half_span = 2.5;
  const Vec3 box_extents{0.5, 0.4, 0.4};
  Entity box("tag box", scene::BoxBody{box_extents}, rf::Material::Cardboard,
             std::make_unique<scene::LinearTrajectory>(
                 lane_pose({-half_span, 0.0, kAntennaHeightM}), Vec3{speed, 0.0, 0.0}),
             /*content_fill=*/0.9);

  std::uint64_t next_id = 1;
  const int count = 10;
  for (int i = 0; i < count; ++i) {
    TagMount m;
    // Stacked along the travel axis, centred on the box face toward the
    // antenna side.
    m.local_position = {(i - (count - 1) / 2.0) * spacing_m, box_extents.y * 0.5, 0.0};
    m.local_dipole_axis = orientation.dipole_axis;
    m.local_patch_normal = orientation.patch_normal;
    m.backing_material = rf::Material::Cardboard;
    m.backing_gap_m = 0.005;
    m.design = design;
    box.add_tag(Tag{TagId{next_id++}, m});
  }
  sc.scene.entities.push_back(std::move(box));

  sc.scene.antennas.push_back(scene::Scene::make_antenna(
      {0.0, box_extents.y * 0.5 + 1.0, kAntennaHeightM}, {0.0, -1.0, 0.0}));

  for (std::uint64_t id = 1; id < next_id; ++id) {
    const auto obj = sc.registry.add_object("tag " + std::to_string(id));
    sc.registry.bind_tag(TagId{id}, obj);
  }

  PortalOptions options;
  sc.portal = make_portal_config(cal, options, sc.scene.antennas.size(),
                                 2.0 * half_span / speed);
  // Controlled mounting on the test box.
  sc.portal.pass_sigma_db = 2.5;
  return sc;
}

Scenario make_object_tracking_scenario(const ObjectScenarioOptions& options,
                                       const CalibrationProfile& cal) {
  require(!options.tag_faces.empty(),
          "make_object_tracking_scenario: need at least one tag face");
  Scenario sc;
  sc.description = "object tracking, " + std::to_string(options.tag_faces.size()) +
                   " tag(s)/box, " + std::to_string(options.portal.antenna_count) +
                   " antenna(s), " + std::to_string(options.portal.reader_count) +
                   " reader(s)";

  // 12 identical boxes, "three rows of 2x2 boxes" on a cart (§3): 3 along
  // the travel direction, 2 across the lane, 2 stacked. Each contains a
  // network router: metal core that does not fill the carton.
  const Vec3 box_extents{0.40, 0.40, 0.30};
  const double gap = 0.02;                 // Boxes nearly touching on the cart.
  const double cart_deck_z = 0.35;         // Tag heights near antenna height.
  const double speed = options.speed_mps;
  require(speed > 0.0, "make_object_tracking_scenario: speed must be positive");
  const double half_span = 2.5;

  std::uint64_t next_id = 1;
  for (int row = 0; row < 3; ++row) {
    for (int col = 0; col < 2; ++col) {
      for (int layer = 0; layer < 2; ++layer) {
        const Vec3 centre{
            -half_span + (row - 1) * (box_extents.x + gap),
            (col == 0 ? 1.0 : -1.0) * (box_extents.y + gap) * 0.5,
            cart_deck_z + box_extents.z * 0.5 + layer * (box_extents.z + gap)};
        Entity box("box r" + std::to_string(row) + " c" + std::to_string(col) + " l" +
                       std::to_string(layer),
                   scene::BoxBody{box_extents}, rf::Material::Metal,
                   std::make_unique<scene::LinearTrajectory>(lane_pose(centre),
                                                             Vec3{speed, 0.0, 0.0}),
                   /*content_fill=*/0.62);

        const auto object = sc.registry.add_object(box.name());
        for (const BoxFace face : options.tag_faces) {
          // The router's metal is close beneath the top/bottom faces
          // (manuals and the chassis) and further behind the vertical
          // faces (corner foam).
          const bool horizontal_face = face == BoxFace::Top || face == BoxFace::Bottom;
          const double content_gap = horizontal_face ? 0.005 : 0.05;
          TagMount m = scene::mount_on_box_face(face, box_extents, rf::Material::Metal,
                                                content_gap);
          m.design = options.tag_design;
          const TagId id{next_id++};
          box.add_tag(Tag{id, m});
          sc.registry.bind_tag(id, object);
        }
        sc.scene.entities.push_back(std::move(box));
      }
    }
  }

  const double near_edge_y = box_extents.y + gap;  // Outer face of near column.
  add_portal_antennas(sc.scene, options.portal.antenna_count, near_edge_y,
                      options.lane_distance_m);

  sc.portal = make_portal_config(cal, options.portal, sc.scene.antennas.size(),
                                 2.0 * half_span / speed);
  return sc;
}

Scenario make_human_tracking_scenario(const HumanScenarioOptions& options,
                                      const CalibrationProfile& cal) {
  require(options.subject_count >= 1 && options.subject_count <= 2,
          "make_human_tracking_scenario: subject_count must be 1 or 2");
  require(!options.tag_spots.empty(),
          "make_human_tracking_scenario: need at least one tag spot");
  Scenario sc;
  sc.description = "human tracking, " + std::to_string(options.subject_count) +
                   " subject(s), " + std::to_string(options.tag_spots.size()) +
                   " tag(s)/subject, " + std::to_string(options.portal.antenna_count) +
                   " antenna(s)";

  const double speed = options.speed_mps;
  require(speed > 0.0, "make_human_tracking_scenario: speed must be positive");
  const double half_span = 2.5;
  const scene::CylinderBody body{};  // Torso-scale defaults.

  // Two subjects walk abreast, the pair centred on the lane; subject 0 is
  // the one closer to antenna 0 (+y side).
  const double abreast_offset = options.subject_count == 2 ? 0.30 : 0.0;

  std::uint64_t next_id = 1;
  for (std::size_t s = 0; s < options.subject_count; ++s) {
    const double y = s == 0 ? abreast_offset : -abreast_offset;
    Pose start = lane_pose({-half_span, y, body.height * 0.5});
    Entity person("subject " + std::to_string(s + 1), body, rf::Material::HumanBody,
                  std::make_unique<scene::WalkingTrajectory>(start,
                                                             Vec3{speed, 0.0, 0.0}));
    const auto object = sc.registry.add_object(person.name());
    for (const BodySpot spot : options.tag_spots) {
      const TagId id{next_id++};
      TagMount m = scene::mount_on_person(spot, body);
      m.design = options.tag_design;
      person.add_tag(Tag{id, m});
      sc.registry.bind_tag(id, object);
    }
    sc.scene.entities.push_back(std::move(person));
  }

  const double near_edge_y = abreast_offset + body.radius;
  add_portal_antennas(sc.scene, options.portal.antenna_count, near_edge_y,
                      options.lane_distance_m);

  sc.portal = make_portal_config(cal, options.portal, sc.scene.antennas.size(),
                                 2.0 * half_span / speed);
  // Worn badges swing, flip, and pick up body contact: the largest
  // pass-to-pass variation of all the scenarios, including occasional
  // hard outages (badge pressed flat against the body).
  sc.portal.pass_sigma_db = 6.0;
  sc.portal.pass_outage_probability = 0.06;
  // Body-scale shadowing decorrelates more slowly than cart clutter.
  sc.portal.shadow_coherence_m = 0.8;
  return sc;
}

}  // namespace rfidsim::reliability
