// Facility simulation: a shipment's whole journey, portal by portal.
//
// The paper's introduction frames the application: "RFID systems are
// employed to track shipments and manage supply-chains", with back ends
// doing "integrated management and monitoring for shipment tracking".
// FacilitySimulator composes the single-portal machinery into that system:
// one shipment (the Table-1 cart) passes a sequence of checkpoints, each
// with its own portal configuration (redundancy differs between a dock
// door and a cheap aisle reader), producing the per-checkpoint detection
// matrix the route/accompany cleaners (track/cleaning.hpp) operate on and
// the end-to-end visibility metrics a logistics operator actually reports.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "reliability/scenarios.hpp"
#include "track/cleaning.hpp"

namespace rfidsim::reliability {

/// One read point along the route.
struct FacilityCheckpoint {
  std::string name;
  PortalOptions portal{};
  /// Shipment speed through this checkpoint (dock forklifts move faster
  /// than inbound conveyors).
  double speed_mps = 1.0;
};

/// What the shipment carries (shared by every checkpoint).
struct ShipmentSpec {
  /// Tag placement on every case, as in the object-tracking scenarios.
  std::vector<scene::BoxFace> tag_faces = {scene::BoxFace::Front};
  rf::TagDesign tag_design{};
};

/// The outcome of one shipment traversing the whole route.
struct FacilityRun {
  /// Raw per-checkpoint detections (indexable by the cleaners).
  track::RouteObservations observations;
  /// Case count of the shipment.
  std::size_t case_count = 0;
  /// Fraction of cases detected at every checkpoint (raw).
  double full_trace_fraction = 0.0;
  /// Fraction of cases detected at the final checkpoint (delivery proof).
  double delivered_fraction = 0.0;
  /// Fraction of (case, checkpoint) cells detected (raw read coverage).
  double cell_coverage = 0.0;
};

/// Simulates shipments through a fixed route.
class FacilitySimulator {
 public:
  /// Throws ConfigError on an empty route.
  FacilitySimulator(std::vector<FacilityCheckpoint> route, ShipmentSpec shipment,
                    CalibrationProfile calibration);

  /// Runs one shipment end to end, checkpoints spread across the sweep
  /// engine (`threads` = 0 uses the shared pool, 1 forces serial).
  /// Deterministic per seed: each checkpoint's randomness is a pure
  /// function of (seed, checkpoint index), so the result is byte-identical
  /// at any thread count.
  FacilityRun run_shipment(std::uint64_t seed, std::size_t threads = 0) const;

  /// Applies the route constraint to a run's observations and recomputes
  /// the metrics (the back-end's cleaned view).
  static FacilityRun clean_with_route_constraint(const FacilityRun& raw);

  const std::vector<FacilityCheckpoint>& route() const { return route_; }

 private:
  /// Recomputes the derived fractions from `observations`.
  static void compute_metrics(FacilityRun& run);

  std::vector<FacilityCheckpoint> route_;
  ShipmentSpec shipment_;
  CalibrationProfile calibration_;
};

}  // namespace rfidsim::reliability
