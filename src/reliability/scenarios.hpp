// Scenario builders: the paper's experimental setups as code.
//
// Each builder reconstructs one rig from §3/§4 of the paper — geometry,
// materials, motion, antennas, readers — parameterized exactly along the
// axes the paper sweeps. Benches and examples compose these with the
// estimator to regenerate the tables and figures.
//
// Shared geometry conventions (see DESIGN.md):
//   * entities travel along +x, the primary antenna is on the +y side,
//   * a second antenna sits on the -y side, 2 m from the first, facing it
//     across the lane ("two area antennas placed at a distance of 2 meters
//     from each other and connected to the same reader", §4) — this is
//     what makes the paper's Table 3/5 R_C columns come out right,
//   * antenna boresight height 1 m.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "reliability/calibration.hpp"
#include "reliability/orientation.hpp"
#include "scene/scene.hpp"
#include "system/portal.hpp"
#include "track/registry.hpp"

namespace rfidsim::reliability {

/// A complete runnable experiment: physical scene, portal installation,
/// and the back end's tag-to-object knowledge.
struct Scenario {
  scene::Scene scene;
  sys::PortalConfig portal;
  track::ObjectRegistry registry;
  std::string description;
};

/// Redundancy/portal options shared by the tracking scenarios.
struct PortalOptions {
  /// Antennas per portal (1 or 2; 2 = facing pair across the lane).
  std::size_t antenna_count = 1;
  /// Readers per portal. 1 reader drives all antennas via TDMA; with more
  /// readers the antennas are split between them and the readers interfere
  /// per gen2::ReaderInterference.
  std::size_t reader_count = 1;
  bool dense_reader_mode = false;
  /// Inventory strategy applied to every reader. The default
  /// (kSingleSession) is the legacy single-engine path, byte-identical to
  /// pre-strategy builds; kMultiSession turns on the gen2::reliable
  /// session-redundancy axis.
  sys::InventoryStrategy strategy{};
  /// Multi-packet-reception capability M applied to every reader (1 =
  /// conventional reader, byte-identical default; see gen2::reliable).
  int mpr_capacity = 1;
};

/// Fig. 2 — read range. 20 tags in a plane grid (12.5 cm x 20 cm pitch)
/// facing a single antenna at `distance_m`; use with single-round runs
/// ("a single read was performed each time", §3).
Scenario make_read_range_scenario(double distance_m, const CalibrationProfile& cal);

/// Fig. 4 — inter-tag distance x orientation. 10 parallel tags with the
/// given spacing and Figure-3 orientation, mounted on a cardboard box,
/// carted past a single antenna at 1 m/s, 1 m away. `design` swaps the tag
/// architecture (extension benches).
Scenario make_intertag_scenario(double spacing_m, const TagOrientation& orientation,
                                const CalibrationProfile& cal,
                                rf::TagDesign design = {});

/// Options for the object-tracking scenarios (Tables 1, 3; Fig. 5).
struct ObjectScenarioOptions {
  /// Faces carrying a tag on every box (1 face = Table 1; 2 = Table 3).
  std::vector<scene::BoxFace> tag_faces = {scene::BoxFace::Front};
  /// Tag architecture applied to every tag (paper future work: dual-dipole
  /// and active designs).
  rf::TagDesign tag_design{};
  PortalOptions portal{};
  double speed_mps = 1.0;
  /// Antenna distance from the near face of the near box column.
  double lane_distance_m = 1.0;
};

/// Tables 1 & 3 — 12 identical router boxes, three rows of 2x2 on a cart.
Scenario make_object_tracking_scenario(const ObjectScenarioOptions& options,
                                       const CalibrationProfile& cal);

/// Options for the human-tracking scenarios (Tables 2, 4, 5; Figs. 6, 7).
struct HumanScenarioOptions {
  /// 1 subject, or 2 walking abreast ("in parallel ... to maximize
  /// blocking", §3) — subject 0 is the closer one.
  std::size_t subject_count = 1;
  /// Badge spots on every subject (1 spot = Table 2; 2/4 = Tables 4-5).
  std::vector<scene::BodySpot> tag_spots = {scene::BodySpot::Front};
  /// Tag architecture applied to every badge.
  rf::TagDesign tag_design{};
  PortalOptions portal{};
  double speed_mps = 1.0;
  /// Antenna distance from the closer subject's path.
  double lane_distance_m = 1.0;
};

/// Tables 2, 4, 5 — people with badge tags walking past the portal.
Scenario make_human_tracking_scenario(const HumanScenarioOptions& options,
                                      const CalibrationProfile& cal);

/// Builds the sys::PortalConfig for a scenario: reader/antenna split,
/// interference, fading, and pass window [start, end]. Exposed so custom
/// scenarios (examples, tests) can reuse the wiring.
sys::PortalConfig make_portal_config(const CalibrationProfile& cal,
                                     const PortalOptions& options,
                                     std::size_t scene_antenna_count,
                                     double pass_duration_s);

}  // namespace rfidsim::reliability
