// Redundancy planner: choose the cheapest scheme that meets a reliability
// target.
//
// The paper ends with "simple yet effective solutions to guarantee
// reliability"; the planner operationalizes that guidance. Given measured
// per-opportunity reliabilities (from the estimator, or from a site
// survey), it searches the scheme space with the §4 analytical model and
// returns the cheapest configuration whose predicted R_C meets the target
// — with reader-level redundancy excluded unless dense-reader mode is
// available, per the paper's negative result.
#pragma once

#include <optional>
#include <vector>

#include "reliability/schemes.hpp"

namespace rfidsim::reliability {

/// Planner inputs.
struct PlannerRequest {
  /// Required tracking reliability, in (0, 1).
  double target_reliability = 0.99;
  /// Read reliability of one (tag, antenna) opportunity for each candidate
  /// tag position, best first. Position i is used by the i-th tag added.
  /// Example from the paper's Table 1: {0.87, 0.83, 0.63, 0.29}.
  std::vector<double> tag_position_reliabilities;
  /// Upper bounds on the search.
  std::size_t max_tags_per_object = 4;
  std::size_t max_antennas_per_portal = 2;
  /// Whether the installed readers support dense-reader mode. Without it
  /// the planner never proposes multiple readers (paper §4: reader-level
  /// redundancy severely reduces reliability without DRM).
  bool dense_reader_mode_available = false;
  std::size_t max_readers_per_portal = 1;
  CostModel cost{};
};

/// One evaluated candidate.
struct PlannedScheme {
  RedundancyScheme scheme;
  double predicted_reliability = 0.0;
  double cost = 0.0;
};

/// Planner output: the chosen scheme plus every candidate evaluated
/// (sorted by cost), for reporting.
struct PlanResult {
  std::optional<PlannedScheme> best;
  std::vector<PlannedScheme> candidates;
};

/// Predicts R_C for a scheme against per-position reliabilities: each of
/// the k tags contributes one opportunity per antenna. A second antenna's
/// opportunity for the same tag is assumed to have the same per-opportunity
/// reliability (the paper's facing-pair symmetry).
double predict_scheme_reliability(const RedundancyScheme& scheme,
                                  const std::vector<double>& tag_position_reliabilities);

/// Runs the search. Throws ConfigError on invalid inputs (empty position
/// list, target outside (0, 1)).
PlanResult plan_redundancy(const PlannerRequest& request);

}  // namespace rfidsim::reliability
