#include "reliability/facility.hpp"

#include <unordered_set>
#include <vector>

#include "common/error.hpp"
#include "reliability/estimator.hpp"
#include "sweep/sweep.hpp"
#include "track/tracking.hpp"

namespace rfidsim::reliability {

FacilitySimulator::FacilitySimulator(std::vector<FacilityCheckpoint> route,
                                     ShipmentSpec shipment,
                                     CalibrationProfile calibration)
    : route_(std::move(route)),
      shipment_(std::move(shipment)),
      calibration_(std::move(calibration)) {
  require(!route_.empty(), "FacilitySimulator: route needs at least one checkpoint");
  require(!shipment_.tag_faces.empty(),
          "FacilitySimulator: shipment needs at least one tag per case");
}

FacilityRun FacilitySimulator::run_shipment(std::uint64_t seed, std::size_t threads) const {
  FacilityRun run;
  run.observations.checkpoint_count = route_.size();
  run.observations.detected.resize(route_.size());

  // Checkpoints are independent sweep cells: cell k derives its generator
  // as sweep::cell_rng(seed, k) — the same Rng(seed).fork(k) the serial
  // loop always used — and writes only slot k, so any thread count yields
  // the identical shipment trace.
  std::vector<std::size_t> case_counts(route_.size(), 0);
  sweep::parallel_for(
      route_.size(), sweep::SweepOptions{.threads = threads}, [&](std::size_t k) {
        ObjectScenarioOptions opt;
        opt.tag_faces = shipment_.tag_faces;
        opt.tag_design = shipment_.tag_design;
        opt.portal = route_[k].portal;
        opt.speed_mps = route_[k].speed_mps;
        const Scenario sc = make_object_tracking_scenario(opt, calibration_);
        case_counts[k] = sc.registry.object_count();

        sys::PortalSimulator sim(sc.scene, sc.portal);
        Rng rng = sweep::cell_rng(seed, k);
        const sys::EventLog log = sim.run(rng);
        const track::TrackingAnalyzer analyzer(sc.registry);
        run.observations.detected[k] = analyzer.analyze(log).objects_identified;
      });
  run.case_count = case_counts.back();
  compute_metrics(run);
  return run;
}

FacilityRun FacilitySimulator::clean_with_route_constraint(const FacilityRun& raw) {
  FacilityRun cleaned = raw;
  cleaned.observations = track::apply_route_constraint(raw.observations).corrected;
  compute_metrics(cleaned);
  return cleaned;
}

void FacilitySimulator::compute_metrics(FacilityRun& run) {
  const std::size_t checkpoints = run.observations.checkpoint_count;
  if (checkpoints == 0 || run.case_count == 0) return;

  // Union of all objects ever seen defines the case universe (identical
  // across checkpoints since it is the same shipment).
  std::unordered_set<track::ObjectId> universe;
  for (const auto& detected : run.observations.detected) {
    universe.insert(detected.begin(), detected.end());
  }

  std::size_t full_traces = 0;
  std::size_t cells = 0;
  for (const auto& obj : universe) {
    bool everywhere = true;
    for (const auto& detected : run.observations.detected) {
      if (detected.contains(obj)) {
        ++cells;
      } else {
        everywhere = false;
      }
    }
    if (everywhere) ++full_traces;
  }

  const double n = static_cast<double>(run.case_count);
  run.full_trace_fraction = static_cast<double>(full_traces) / n;
  run.delivered_fraction =
      static_cast<double>(run.observations.detected.back().size()) / n;
  run.cell_coverage =
      static_cast<double>(cells) / (n * static_cast<double>(checkpoints));
}

}  // namespace rfidsim::reliability
