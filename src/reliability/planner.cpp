#include "reliability/planner.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "reliability/analytical.hpp"

namespace rfidsim::reliability {

double predict_scheme_reliability(const RedundancyScheme& scheme,
                                  const std::vector<double>& tag_position_reliabilities) {
  require(scheme.tags_per_object >= 1, "predict_scheme_reliability: need >= 1 tag");
  require(scheme.tags_per_object <= tag_position_reliabilities.size(),
          "predict_scheme_reliability: more tags than candidate positions");
  std::vector<double> opportunities;
  opportunities.reserve(scheme.read_opportunities());
  for (std::size_t t = 0; t < scheme.tags_per_object; ++t) {
    for (std::size_t a = 0; a < scheme.antennas_per_portal; ++a) {
      opportunities.push_back(tag_position_reliabilities[t]);
    }
  }
  return expected_reliability(opportunities);
}

PlanResult plan_redundancy(const PlannerRequest& request) {
  require(request.target_reliability > 0.0 && request.target_reliability < 1.0,
          "plan_redundancy: target must be in (0, 1)");
  require(!request.tag_position_reliabilities.empty(),
          "plan_redundancy: need at least one tag position reliability");
  for (double p : request.tag_position_reliabilities) {
    require(p >= 0.0 && p <= 1.0, "plan_redundancy: reliability out of [0, 1]");
  }
  require(request.max_tags_per_object >= 1, "plan_redundancy: max_tags must be >= 1");
  require(request.max_antennas_per_portal >= 1,
          "plan_redundancy: max_antennas must be >= 1");

  // Positions are consumed best-first regardless of input order.
  std::vector<double> positions = request.tag_position_reliabilities;
  std::sort(positions.begin(), positions.end(), std::greater<>());

  const std::size_t max_tags =
      std::min(request.max_tags_per_object, positions.size());
  const std::size_t max_readers =
      request.dense_reader_mode_available ? std::max<std::size_t>(request.max_readers_per_portal, 1)
                                          : 1;

  PlanResult result;
  for (std::size_t tags = 1; tags <= max_tags; ++tags) {
    for (std::size_t antennas = 1; antennas <= request.max_antennas_per_portal; ++antennas) {
      for (std::size_t readers = 1; readers <= max_readers; ++readers) {
        if (readers > antennas) continue;  // A reader needs its own antenna(s).
        RedundancyScheme scheme{
            .tags_per_object = tags,
            .antennas_per_portal = antennas,
            .readers_per_portal = readers,
            .dense_reader_mode = request.dense_reader_mode_available && readers > 1,
        };
        PlannedScheme candidate;
        candidate.scheme = scheme;
        candidate.predicted_reliability = predict_scheme_reliability(scheme, positions);
        candidate.cost = request.cost.total_cost(scheme);
        result.candidates.push_back(candidate);
      }
    }
  }

  std::sort(result.candidates.begin(), result.candidates.end(),
            [](const PlannedScheme& a, const PlannedScheme& b) {
              if (a.cost != b.cost) return a.cost < b.cost;
              return a.predicted_reliability > b.predicted_reliability;
            });

  for (const PlannedScheme& candidate : result.candidates) {
    if (candidate.predicted_reliability >= request.target_reliability) {
      result.best = candidate;
      break;
    }
  }
  return result;
}

}  // namespace rfidsim::reliability
