#include "reliability/schemes.hpp"

namespace rfidsim::reliability {

std::string RedundancyScheme::label() const {
  std::string out = std::to_string(antennas_per_portal) + " antenna" +
                    (antennas_per_portal == 1 ? "" : "s") + ", " +
                    std::to_string(tags_per_object) + " tag" +
                    (tags_per_object == 1 ? "" : "s");
  if (readers_per_portal > 1) {
    out += ", " + std::to_string(readers_per_portal) + " readers";
    out += dense_reader_mode ? " (DRM)" : " (no DRM)";
  }
  return out;
}

std::vector<RedundancyScheme> figure5_schemes() {
  return {
      {.tags_per_object = 1, .antennas_per_portal = 1},
      {.tags_per_object = 1, .antennas_per_portal = 2},
      {.tags_per_object = 2, .antennas_per_portal = 1},
      {.tags_per_object = 2, .antennas_per_portal = 2},
  };
}

std::vector<RedundancyScheme> figure6_schemes() {
  return {
      {.tags_per_object = 1, .antennas_per_portal = 1},
      {.tags_per_object = 1, .antennas_per_portal = 2},
      {.tags_per_object = 2, .antennas_per_portal = 1},
      {.tags_per_object = 2, .antennas_per_portal = 2},
      {.tags_per_object = 4, .antennas_per_portal = 1},
      {.tags_per_object = 4, .antennas_per_portal = 2},
  };
}

}  // namespace rfidsim::reliability
