// The six tag orientations of the paper's Figure 3.
//
// The tags ride on a box moving along +x past a reader antenna on the +y
// side. An orientation fixes the dipole axis and the patch (face) normal.
// Cases 1 and 5 point the dipole axis *at* the antenna when abeam — the
// axial null — and the paper finds exactly those two "least reliable ...
// perpendicular to the antenna".
#pragma once

#include <array>
#include <string_view>

#include "common/vec3.hpp"

namespace rfidsim::reliability {

/// One of the six orientations swept in Fig. 3/4.
struct TagOrientation {
  int case_number;  ///< 1-6, as labelled in the paper's Figure 3.
  Vec3 dipole_axis;
  Vec3 patch_normal;
  std::string_view description;
};

/// All six orientations, in figure order.
inline constexpr std::array<TagOrientation, 6> kFigure3Orientations{{
    {1, {0.0, 1.0, 0.0}, {1.0, 0.0, 0.0},
     "axis toward antenna, face forward (perpendicular)"},
    {2, {1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}, "axis along travel, face to antenna"},
    {3, {0.0, 0.0, 1.0}, {0.0, 1.0, 0.0}, "axis vertical, face to antenna"},
    {4, {1.0, 0.0, 0.0}, {0.0, 0.0, 1.0}, "axis along travel, face up"},
    {5, {0.0, 1.0, 0.0}, {0.0, 0.0, 1.0},
     "axis toward antenna, face up (perpendicular)"},
    {6, {0.0, 0.0, 1.0}, {1.0, 0.0, 0.0}, "axis vertical, face forward"},
}};

}  // namespace rfidsim::reliability
