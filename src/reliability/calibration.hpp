// Calibration profiles: every tunable physics constant in one place.
//
// The paper measured one specific rig (Symbol Gen 2 dipole tags, Matrix
// AR400 reader, one area antenna, 30 dBm). We cannot measure that rig, so
// all constants that would otherwise be measured are collected here,
// documented, and tuned once so the simulator lands near the paper's
// numbers; the benches then regenerate every table and figure from the
// same profile. See EXPERIMENTS.md for the calibration notes.
#pragma once

#include "gen2/interference.hpp"
#include "gen2/inventory.hpp"
#include "rf/link_budget.hpp"
#include "scene/path_evaluator.hpp"

namespace rfidsim::reliability {

/// One complete set of physics/protocol constants.
struct CalibrationProfile {
  rf::RadioParams radio{};
  scene::EvaluatorParams evaluator{};
  gen2::InventoryConfig inventory{};
  gen2::InterferenceParams interference{};
  /// Shadow fading sigma (dB) and spatial coherence (m); see PortalConfig.
  double shadow_sigma_db = 4.0;
  double shadow_coherence_m = 0.45;
  double fast_sigma_db = 2.0;
  /// Per-pass systematic tag variation (dB); see PortalConfig.
  double pass_sigma_db = 5.5;
  /// TDMA dwell per antenna for multi-antenna readers.
  double antenna_dwell_s = 0.10;

  /// The profile used by all paper-reproduction benches: 2006-era passive
  /// UHF portal hardware per DESIGN.md's substitution table.
  static CalibrationProfile paper2006();
};

inline CalibrationProfile CalibrationProfile::paper2006() {
  CalibrationProfile cal;
  // Matrix AR400: 30 dBm max conducted power (paper §3), short feed run.
  cal.radio.tx_power = DbmPower(30.0);
  cal.radio.cable_loss = Decibel(0.8);
  // 2006-era EPC Gen 2 chip wake-up threshold.
  cal.radio.tag_sensitivity = DbmPower(-15.5);
  cal.radio.reader_sensitivity = DbmPower(-82.0);
  cal.radio.backscatter_loss = Decibel(6.0);
  cal.radio.frequency_hz = 915e6;
  // Cluttered lab/warehouse: slightly super-quadratic distance decay.
  cal.radio.path_loss_exponent = 2.3;

  // Fig. 4 calibration: tags need 20-40 mm spacing depending on
  // orientation.
  cal.evaluator.coupling.contact_loss_db = 30.0;
  cal.evaluator.coupling.decay_scale_m = 0.012;

  // Strong nearby reflectors (the metal-laden cart, a second subject)
  // measurably help blocked tags — the paper's "signal reflections off the
  // farther subject".
  cal.evaluator.reflection_bonus_db = 8.0;
  // Adjacent-body near-field absorption (two-person tests).
  cal.evaluator.proximity_loss_db = 4.5;
  // Diffuse field strength of the lab (Table 1's far-side reads).
  cal.evaluator.scatter_excess_db = 14.0;

  // Paper's measured singulation throughput: ~0.02 s per tag end to end.
  cal.inventory.timing = gen2::LinkTiming{};
  cal.inventory.q.initial_q = 3.0;

  return cal;
}

}  // namespace rfidsim::reliability
