#include "reliability/analytical.hpp"

#include <cmath>

#include "common/error.hpp"

namespace rfidsim::reliability {

double expected_reliability(const std::vector<double>& opportunity_reliabilities) {
  double miss = 1.0;
  for (double p : opportunity_reliabilities) {
    require(p >= 0.0 && p <= 1.0, "expected_reliability: probability out of [0, 1]");
    miss *= 1.0 - p;
  }
  return opportunity_reliabilities.empty() ? 0.0 : 1.0 - miss;
}

double expected_reliability_identical(double p, std::size_t count) {
  require(p >= 0.0 && p <= 1.0, "expected_reliability_identical: p out of [0, 1]");
  if (count == 0) return 0.0;
  return 1.0 - std::pow(1.0 - p, static_cast<double>(count));
}

std::size_t opportunities_for_target(double p, double target) {
  if (target <= 0.0) return 0;
  require(target < 1.0, "opportunities_for_target: target must be < 1");
  require(p > 0.0 && p <= 1.0, "opportunities_for_target: p must be in (0, 1]");
  if (p >= target) return 1;
  if (p == 1.0) return 1;
  // 1 - (1-p)^n >= target  <=>  n >= log(1-target) / log(1-p).
  const double n = std::log(1.0 - target) / std::log(1.0 - p);
  return static_cast<std::size_t>(std::ceil(n - 1e-12));
}

double marginal_gain(double r, double p_new) {
  require(r >= 0.0 && r <= 1.0, "marginal_gain: r out of [0, 1]");
  require(p_new >= 0.0 && p_new <= 1.0, "marginal_gain: p_new out of [0, 1]");
  return (1.0 - (1.0 - r) * (1.0 - p_new)) - r;
}

double expected_reliability_grid(const std::vector<double>& reliabilities,
                                 std::size_t tags, std::size_t antennas) {
  require(reliabilities.size() == tags * antennas,
          "expected_reliability_grid: size must equal tags * antennas");
  return expected_reliability(reliabilities);
}

double expected_reliability_grid_degraded(const std::vector<double>& reliabilities,
                                          std::size_t tags, std::size_t antennas,
                                          const std::vector<bool>& antenna_live) {
  require(reliabilities.size() == tags * antennas,
          "expected_reliability_grid_degraded: size must equal tags * antennas");
  require(antenna_live.size() == antennas,
          "expected_reliability_grid_degraded: need one liveness flag per antenna");
  std::vector<double> surviving;
  surviving.reserve(reliabilities.size());
  for (std::size_t t = 0; t < tags; ++t) {
    for (std::size_t a = 0; a < antennas; ++a) {
      if (antenna_live[a]) surviving.push_back(reliabilities[t * antennas + a]);
    }
  }
  return expected_reliability(surviving);
}

}  // namespace rfidsim::reliability
