// Monte Carlo estimation of read and tracking reliability.
//
// The paper estimates reliabilities by repeating each pass 10-40 times and
// counting; this module does the same against simulated passes, and adds
// the statistics the tables/figures need: per-location proportions with
// Wilson intervals, tags-read-per-pass summaries with quartiles, and the
// measured-vs-analytical (R_M vs R_C) comparison of §4.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "reliability/scenarios.hpp"
#include "system/events.hpp"
#include "track/registry.hpp"

namespace rfidsim::reliability {

/// The event logs of `repetitions` independent passes of one scenario.
struct RepeatedRuns {
  std::vector<sys::EventLog> logs;
};

/// Runs the scenario `repetitions` times with independently forked RNG
/// streams derived from `seed`. `single_round` selects the paper's
/// "single read" mode (one inventory round at t = 0, used by Fig. 2)
/// instead of a full continuous-mode pass.
RepeatedRuns run_repeated(const Scenario& scenario, std::size_t repetitions,
                          std::uint64_t seed, bool single_round = false);

/// Sweep-backed parallel variant: byte-identical results to run_repeated
/// (each repetition's RNG is a pure function of (seed, repetition index)
/// per sweep::cell_rng, so scheduling cannot change outcomes), spread
/// across `threads` workers of the rfidsim::sweep engine. `threads` of 0
/// uses the shared hardware-concurrency pool. All paper benches run on
/// this path; run_repeated stays as the serial reference the differential
/// tests compare against.
RepeatedRuns run_repeated_parallel(const Scenario& scenario, std::size_t repetitions,
                                   std::uint64_t seed, std::size_t threads = 0,
                                   bool single_round = false);

/// Number of distinct tags seen in each repetition (Fig. 2 / Fig. 4's
/// "tags read out of N" series).
std::vector<double> distinct_tags_per_run(const RepeatedRuns& runs);

/// Per-tag read reliability across repetitions: fraction of passes in
/// which each tag was seen at least once, with Wilson intervals.
std::unordered_map<scene::TagId, ProportionInterval> per_tag_reliability(
    const Scenario& scenario, const RepeatedRuns& runs);

/// Per-object tracking reliability across repetitions (>= 1 of the
/// object's tags seen), with Wilson intervals.
std::unordered_map<track::ObjectId, ProportionInterval> per_object_reliability(
    const Scenario& scenario, const RepeatedRuns& runs);

/// Mean read reliability over all tags (the paper's per-location averages).
double mean_tag_reliability(const Scenario& scenario, const RepeatedRuns& runs);

/// Mean tracking reliability over all objects.
double mean_object_reliability(const Scenario& scenario, const RepeatedRuns& runs);

/// Convenience: run + mean tag reliability in one call (sweep-backed,
/// byte-identical to the serial path).
double measure_tag_reliability(const Scenario& scenario, std::size_t repetitions,
                               std::uint64_t seed);

/// Convenience: run + mean tracking reliability in one call (sweep-backed,
/// byte-identical to the serial path).
double measure_tracking_reliability(const Scenario& scenario, std::size_t repetitions,
                                    std::uint64_t seed);

}  // namespace rfidsim::reliability
