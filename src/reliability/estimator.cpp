#include "reliability/estimator.hpp"

#include <memory>
#include <unordered_set>

#include "sweep/sweep.hpp"
#include "system/portal.hpp"
#include "track/tracking.hpp"

namespace rfidsim::reliability {

RepeatedRuns run_repeated(const Scenario& scenario, std::size_t repetitions,
                          std::uint64_t seed, bool single_round) {
  RepeatedRuns runs;
  runs.logs.reserve(repetitions);
  const Rng root(seed);
  sys::PortalSimulator sim(scenario.scene, scenario.portal);
  for (std::size_t rep = 0; rep < repetitions; ++rep) {
    Rng rng = root.fork(rep);
    runs.logs.push_back(single_round ? sim.run_single_round(scenario.portal.start_time_s, rng)
                                     : sim.run(rng));
  }
  return runs;
}

RepeatedRuns run_repeated_parallel(const Scenario& scenario, std::size_t repetitions,
                                   std::uint64_t seed, std::size_t threads,
                                   bool single_round) {
  RepeatedRuns runs;
  runs.logs.resize(repetitions);
  // Cell rep's generator is sweep::cell_rng(seed, rep) == Rng(seed).fork(rep),
  // the exact derivation of run_repeated's serial loop — which is why the
  // two paths are byte-identical regardless of thread count (see
  // tests/reliability/parallel_test.cpp). One simulator per lane: the run
  // fully resets per-pass state, and the evaluator's static-geometry cache
  // carried between cells holds first-evaluation results verbatim, so lane
  // reuse cannot change a bit — it only keeps the cache warm.
  std::vector<std::unique_ptr<sys::PortalSimulator>> sims;
  sweep::parallel_for(
      repetitions, sweep::SweepOptions{.threads = threads},
      [&](std::size_t lanes) { sims.resize(lanes); },
      [&](std::size_t rep, std::size_t lane) {
        if (!sims[lane]) {
          sims[lane] =
              std::make_unique<sys::PortalSimulator>(scenario.scene, scenario.portal);
        }
        Rng rng = sweep::cell_rng(seed, rep);
        runs.logs[rep] =
            single_round
                ? sims[lane]->run_single_round(scenario.portal.start_time_s, rng)
                : sims[lane]->run(rng);
      });
  // Lane completion: fold each lane simulator's batched evaluator tallies
  // into the registry now rather than at destruction, so registry dumps
  // taken right after a sweep see the whole sweep.
  for (const auto& sim : sims) {
    if (sim) sim->flush_obs();
  }
  return runs;
}

std::vector<double> distinct_tags_per_run(const RepeatedRuns& runs) {
  std::vector<double> counts;
  counts.reserve(runs.logs.size());
  for (const sys::EventLog& log : runs.logs) {
    std::unordered_set<scene::TagId> seen;
    for (const sys::ReadEvent& ev : log) seen.insert(ev.tag);
    counts.push_back(static_cast<double>(seen.size()));
  }
  return counts;
}

std::unordered_map<scene::TagId, ProportionInterval> per_tag_reliability(
    const Scenario& scenario, const RepeatedRuns& runs) {
  std::unordered_map<scene::TagId, std::size_t> successes;
  for (const auto& address : scenario.scene.all_tags()) {
    const scene::TagId id =
        scenario.scene.entities[address.entity].tags()[address.tag].id;
    successes.emplace(id, 0);
  }
  for (const sys::EventLog& log : runs.logs) {
    std::unordered_set<scene::TagId> seen;
    for (const sys::ReadEvent& ev : log) seen.insert(ev.tag);
    for (const scene::TagId& id : seen) {
      const auto it = successes.find(id);
      if (it != successes.end()) ++it->second;
    }
  }
  std::unordered_map<scene::TagId, ProportionInterval> result;
  for (const auto& [id, count] : successes) {
    result.emplace(id, wilson_interval(count, runs.logs.size()));
  }
  return result;
}

std::unordered_map<track::ObjectId, ProportionInterval> per_object_reliability(
    const Scenario& scenario, const RepeatedRuns& runs) {
  const track::TrackingAnalyzer analyzer(scenario.registry);
  std::unordered_map<track::ObjectId, std::size_t> successes;
  for (const track::ObjectId& obj : scenario.registry.objects()) successes.emplace(obj, 0);
  for (const sys::EventLog& log : runs.logs) {
    const track::PassReport report = analyzer.analyze(log);
    for (const track::ObjectId& obj : report.objects_identified) {
      const auto it = successes.find(obj);
      if (it != successes.end()) ++it->second;
    }
  }
  std::unordered_map<track::ObjectId, ProportionInterval> result;
  for (const auto& [obj, count] : successes) {
    result.emplace(obj, wilson_interval(count, runs.logs.size()));
  }
  return result;
}

double mean_tag_reliability(const Scenario& scenario, const RepeatedRuns& runs) {
  const auto per_tag = per_tag_reliability(scenario, runs);
  if (per_tag.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& [id, ci] : per_tag) sum += ci.estimate;
  return sum / static_cast<double>(per_tag.size());
}

double mean_object_reliability(const Scenario& scenario, const RepeatedRuns& runs) {
  const auto per_object = per_object_reliability(scenario, runs);
  if (per_object.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& [obj, ci] : per_object) sum += ci.estimate;
  return sum / static_cast<double>(per_object.size());
}

double measure_tag_reliability(const Scenario& scenario, std::size_t repetitions,
                               std::uint64_t seed) {
  return mean_tag_reliability(scenario,
                              run_repeated_parallel(scenario, repetitions, seed));
}

double measure_tracking_reliability(const Scenario& scenario, std::size_t repetitions,
                                    std::uint64_t seed) {
  return mean_object_reliability(scenario,
                                 run_repeated_parallel(scenario, repetitions, seed));
}

}  // namespace rfidsim::reliability
