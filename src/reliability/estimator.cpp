#include "reliability/estimator.hpp"

#include <atomic>
#include <thread>
#include <unordered_set>

#include "system/portal.hpp"
#include "track/tracking.hpp"

namespace rfidsim::reliability {

RepeatedRuns run_repeated(const Scenario& scenario, std::size_t repetitions,
                          std::uint64_t seed, bool single_round) {
  RepeatedRuns runs;
  runs.logs.reserve(repetitions);
  const Rng root(seed);
  sys::PortalSimulator sim(scenario.scene, scenario.portal);
  for (std::size_t rep = 0; rep < repetitions; ++rep) {
    Rng rng = root.fork(rep);
    runs.logs.push_back(single_round ? sim.run_single_round(scenario.portal.start_time_s, rng)
                                     : sim.run(rng));
  }
  return runs;
}

RepeatedRuns run_repeated_parallel(const Scenario& scenario, std::size_t repetitions,
                                   std::uint64_t seed, std::size_t threads,
                                   bool single_round) {
  if (threads == 0) {
    threads = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  }
  threads = std::min(threads, std::max<std::size_t>(repetitions, 1));

  RepeatedRuns runs;
  runs.logs.resize(repetitions);
  const Rng root(seed);
  std::atomic<std::size_t> next{0};

  auto worker = [&] {
    // Each worker owns its simulator; PortalSimulator is not thread-safe
    // but is cheap to construct.
    sys::PortalSimulator sim(scenario.scene, scenario.portal);
    for (std::size_t rep = next.fetch_add(1); rep < repetitions;
         rep = next.fetch_add(1)) {
      Rng rng = root.fork(rep);
      runs.logs[rep] = single_round
                           ? sim.run_single_round(scenario.portal.start_time_s, rng)
                           : sim.run(rng);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return runs;
}

std::vector<double> distinct_tags_per_run(const RepeatedRuns& runs) {
  std::vector<double> counts;
  counts.reserve(runs.logs.size());
  for (const sys::EventLog& log : runs.logs) {
    std::unordered_set<scene::TagId> seen;
    for (const sys::ReadEvent& ev : log) seen.insert(ev.tag);
    counts.push_back(static_cast<double>(seen.size()));
  }
  return counts;
}

std::unordered_map<scene::TagId, ProportionInterval> per_tag_reliability(
    const Scenario& scenario, const RepeatedRuns& runs) {
  std::unordered_map<scene::TagId, std::size_t> successes;
  for (const auto& address : scenario.scene.all_tags()) {
    const scene::TagId id =
        scenario.scene.entities[address.entity].tags()[address.tag].id;
    successes.emplace(id, 0);
  }
  for (const sys::EventLog& log : runs.logs) {
    std::unordered_set<scene::TagId> seen;
    for (const sys::ReadEvent& ev : log) seen.insert(ev.tag);
    for (const scene::TagId& id : seen) {
      const auto it = successes.find(id);
      if (it != successes.end()) ++it->second;
    }
  }
  std::unordered_map<scene::TagId, ProportionInterval> result;
  for (const auto& [id, count] : successes) {
    result.emplace(id, wilson_interval(count, runs.logs.size()));
  }
  return result;
}

std::unordered_map<track::ObjectId, ProportionInterval> per_object_reliability(
    const Scenario& scenario, const RepeatedRuns& runs) {
  const track::TrackingAnalyzer analyzer(scenario.registry);
  std::unordered_map<track::ObjectId, std::size_t> successes;
  for (const track::ObjectId& obj : scenario.registry.objects()) successes.emplace(obj, 0);
  for (const sys::EventLog& log : runs.logs) {
    const track::PassReport report = analyzer.analyze(log);
    for (const track::ObjectId& obj : report.objects_identified) {
      const auto it = successes.find(obj);
      if (it != successes.end()) ++it->second;
    }
  }
  std::unordered_map<track::ObjectId, ProportionInterval> result;
  for (const auto& [obj, count] : successes) {
    result.emplace(obj, wilson_interval(count, runs.logs.size()));
  }
  return result;
}

double mean_tag_reliability(const Scenario& scenario, const RepeatedRuns& runs) {
  const auto per_tag = per_tag_reliability(scenario, runs);
  if (per_tag.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& [id, ci] : per_tag) sum += ci.estimate;
  return sum / static_cast<double>(per_tag.size());
}

double mean_object_reliability(const Scenario& scenario, const RepeatedRuns& runs) {
  const auto per_object = per_object_reliability(scenario, runs);
  if (per_object.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& [obj, ci] : per_object) sum += ci.estimate;
  return sum / static_cast<double>(per_object.size());
}

double measure_tag_reliability(const Scenario& scenario, std::size_t repetitions,
                               std::uint64_t seed) {
  return mean_tag_reliability(scenario, run_repeated(scenario, repetitions, seed));
}

double measure_tracking_reliability(const Scenario& scenario, std::size_t repetitions,
                                    std::uint64_t seed) {
  return mean_object_reliability(scenario, run_repeated(scenario, repetitions, seed));
}

}  // namespace rfidsim::reliability
