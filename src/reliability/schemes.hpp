// Redundancy schemes: the paper's §4 taxonomy as a first-class type.
//
// Redundancy can be applied at three levels — tags per object, antennas
// per portal, readers per portal — and the paper's central finding is the
// ordering: tag-level redundancy helps most, antenna-level helps under
// blocking, reader-level *hurts* without dense-reader mode. A
// RedundancyScheme names one point in that space; helpers enumerate the
// sweep the paper's Figures 5-7 walk through.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace rfidsim::reliability {

/// One redundancy configuration.
struct RedundancyScheme {
  std::size_t tags_per_object = 1;
  std::size_t antennas_per_portal = 1;
  std::size_t readers_per_portal = 1;
  bool dense_reader_mode = false;

  /// Total read opportunities per object (the analytical model's n):
  /// every (tag, antenna) combination in the same area, per §4.
  std::size_t read_opportunities() const {
    return tags_per_object * antennas_per_portal;
  }

  /// Short display label, e.g. "2 antennas, 2 tags".
  std::string label() const;
};

/// The four combinations of Fig. 5 / Fig. 6's x-axis: {1,2} antennas x
/// {1,2} tags, single reader.
std::vector<RedundancyScheme> figure5_schemes();

/// The six combinations of Figs. 6-7 (human tracking): 1-2 antennas x
/// 1, 2, 4 tags.
std::vector<RedundancyScheme> figure6_schemes();

/// Simple hardware cost model for the planner: tags are cheap and
/// per-object, antennas and readers are per-portal infrastructure.
struct CostModel {
  double tag_cost = 0.05;         ///< Per tag (2006: "$0.05 per EPC Gen 2 tag").
  double antenna_cost = 200.0;    ///< Per portal antenna.
  double reader_cost = 1500.0;    ///< Per reader.
  /// Objects expected through the portal over the amortization horizon;
  /// tag cost scales with this, infrastructure does not.
  double objects_per_horizon = 10000.0;

  double total_cost(const RedundancyScheme& scheme) const {
    return static_cast<double>(scheme.tags_per_object) * tag_cost * objects_per_horizon +
           static_cast<double>(scheme.antennas_per_portal) * antenna_cost +
           static_cast<double>(scheme.readers_per_portal) * reader_cost;
  }
};

}  // namespace rfidsim::reliability
