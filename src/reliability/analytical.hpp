// The paper's analytical redundancy model (§4).
//
// "We define every combination of tag and antenna in the same area as a
//  read opportunity. Assuming read opportunities are independent, if the
//  reliabilities for read opportunities leading to an object identification
//  are P_1, P_2, ..., P_n, the expected object tracking reliability R_C is:
//      R_C = 1 - ((1 - P_1)(1 - P_2)...(1 - P_n))"
//
// This module implements that model plus the inverse questions a deployer
// asks: how many opportunities of reliability p do I need to hit a target,
// and what does one more tag/antenna buy me.
#pragma once

#include <cstddef>
#include <vector>

namespace rfidsim::reliability {

/// R_C for a set of independent read opportunities. Each probability must
/// be in [0, 1] (throws ConfigError otherwise). An empty set yields 0.
double expected_reliability(const std::vector<double>& opportunity_reliabilities);

/// R_C for `count` identical opportunities of reliability `p`:
/// 1 - (1-p)^count.
double expected_reliability_identical(double p, std::size_t count);

/// Smallest number of identical opportunities of reliability `p` whose
/// combined R_C reaches `target`. Returns 0 when target <= 0; throws
/// ConfigError when p <= 0 or p >= 1 is insufficient to ever reach a
/// target < 1... (p >= target with one opportunity returns 1; p == 0 with
/// target > 0 is unreachable and throws).
std::size_t opportunities_for_target(double p, double target);

/// Marginal gain of adding one opportunity of reliability `p_new` to a
/// system currently at reliability `r`: the new R_C minus r.
double marginal_gain(double r, double p_new);

/// The paper's read-opportunity grid: k tags and m antennas give k*m
/// opportunities. Computes R_C for per-(tag, antenna) reliabilities laid
/// out row-major as reliabilities[tag * antennas + antenna].
double expected_reliability_grid(const std::vector<double>& reliabilities,
                                 std::size_t tags, std::size_t antennas);

/// Degraded-mode R_C: the same grid with dead infrastructure masked out.
/// When track::ResilientIngest declares a reader down, every read
/// opportunity through that reader's antennas is gone — the remaining
/// grid re-weights to the antennas still alive. `antenna_live` has one
/// entry per antenna column; a dead column contributes nothing. Size
/// mismatches throw ConfigError. All antennas dead yields 0: no
/// opportunities, no tracking.
double expected_reliability_grid_degraded(const std::vector<double>& reliabilities,
                                          std::size_t tags, std::size_t antennas,
                                          const std::vector<bool>& antenna_live);

}  // namespace rfidsim::reliability
