#include "gen2/interference.hpp"

namespace rfidsim::gen2 {

double ReaderInterference::command_jam_probability(
    const ReaderRfState& self, const std::vector<ReaderRfState>& others) const {
  double p_clear = 1.0;
  for (const ReaderRfState& other : others) {
    if (!other.transmitting) continue;
    if (self.position.distance_to(other.position) > params_.interference_range_m) continue;
    const bool coordinated = self.dense_reader_mode && other.dense_reader_mode &&
                             self.channel != other.channel;
    const double p_jam = coordinated || self.channel != other.channel
                             ? params_.drm_jam_probability
                             : params_.cochannel_jam_probability;
    p_clear *= 1.0 - p_jam;
  }
  return 1.0 - p_clear;
}

std::vector<int> ReaderInterference::assign_channels(std::size_t count,
                                                     bool dense_reader_mode) {
  std::vector<int> channels(count, 0);
  if (dense_reader_mode) {
    for (std::size_t i = 0; i < count; ++i) channels[i] = static_cast<int>(i);
  }
  return channels;
}

}  // namespace rfidsim::gen2
