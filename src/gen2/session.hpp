// Gen 2 sessions and inventoried-flag persistence.
//
// Each tag keeps one inventoried flag (A/B) per session S0-S3. A reader
// inventories tags whose flag matches the Query's target and the tag then
// toggles its flag, dropping out of subsequent rounds — which is what lets
// a portal sweep a population instead of re-reading the loudest tag
// forever. The flags decay back at session-specific persistence times;
// S0 resets whenever the tag loses power.
#pragma once

namespace rfidsim::gen2 {

/// The four Gen 2 sessions.
enum class Session { S0, S1, S2, S3 };

/// The two inventoried-flag values.
enum class InventoriedFlag { A, B };

/// Nominal persistence of the inventoried flag once the tag is
/// de-energized, in seconds. (Spec: S0 none; S1 0.5-5 s regardless of
/// power; S2/S3 > 2 s while de-energized.) Returns the value this
/// simulator uses.
constexpr double flag_persistence_s(Session s) {
  switch (s) {
    case Session::S0: return 0.0;
    case Session::S1: return 1.0;
    case Session::S2: return 4.0;
    case Session::S3: return 4.0;
  }
  return 0.0;
}

}  // namespace rfidsim::gen2
