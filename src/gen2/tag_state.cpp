#include "gen2/tag_state.hpp"

namespace rfidsim::gen2 {

void TagState::set_powered(bool powered, double t_s, Session session) {
  if (powered == powered_) return;
  powered_ = powered;
  if (powered) {
    // Regaining power: if the flag's persistence expired while dark, it
    // reverted to A. Resolve that now so subsequent queries see it.
    if (flag_ == InventoriedFlag::B && flag_set_time_s_ >= 0.0) {
      const double dark_since = power_loss_time_s_;
      const double persistence = flag_persistence_s(session);
      if (session == Session::S0 || t_s - dark_since > persistence) {
        flag_ = InventoriedFlag::A;
      }
    }
    state_ = TagProtocolState::Ready;
  } else {
    power_loss_time_s_ = t_s;
    state_ = TagProtocolState::Unpowered;
    slot_counter_ = 0;
  }
}

void TagState::draw_slot(int q, Rng& rng) {
  const std::uint32_t frame = q <= 0 ? 1u : (1u << q);
  slot_counter_ = static_cast<std::uint32_t>(rng.uniform_int(0, frame - 1));
  state_ = slot_counter_ == 0 ? TagProtocolState::Reply : TagProtocolState::Arbitrate;
}

void TagState::on_query(int q, InventoriedFlag target, Session session, double t_s,
                        Rng& rng) {
  if (!powered_) return;
  if (flag(t_s, session) != target) {
    state_ = TagProtocolState::Ready;
    return;
  }
  draw_slot(q, rng);
}

void TagState::on_query_adjust(int q, Rng& rng) {
  if (!powered_) return;
  if (state_ != TagProtocolState::Arbitrate && state_ != TagProtocolState::Reply) return;
  draw_slot(q, rng);
}

void TagState::on_query_rep() {
  if (!powered_) return;
  if (state_ == TagProtocolState::Arbitrate) {
    if (slot_counter_ > 0) --slot_counter_;
    if (slot_counter_ == 0) state_ = TagProtocolState::Reply;
  } else if (state_ == TagProtocolState::Reply) {
    // Spec: an unacknowledged replying tag that hears QueryRep returns to
    // Arbitrate with slot 0x7FFF (effectively out of this round). We drop
    // it to Ready, which has the same observable effect for inventory.
    state_ = TagProtocolState::Ready;
  }
}

void TagState::on_acknowledged(double t_s) {
  if (!powered_ || state_ != TagProtocolState::Reply) return;
  state_ = TagProtocolState::Acknowledged;
  // Spec behaviour: singulation TOGGLES the inventoried flag (so a
  // B-targeted round hands the tag back to A).
  if (flag_ == InventoriedFlag::A) {
    flag_ = InventoriedFlag::B;
    flag_set_time_s_ = t_s;
  } else {
    flag_ = InventoriedFlag::A;
  }
}

void TagState::on_reply_lost(int q, Rng& rng) {
  if (!powered_ || state_ != TagProtocolState::Reply) return;
  draw_slot(q, rng);
}

InventoriedFlag TagState::flag(double t_s, Session session) const {
  if (flag_ == InventoriedFlag::A) return InventoriedFlag::A;
  if (!powered_) {
    const double persistence = flag_persistence_s(session);
    if (session == Session::S0 || t_s - power_loss_time_s_ > persistence) {
      return InventoriedFlag::A;
    }
  }
  return InventoriedFlag::B;
}

}  // namespace rfidsim::gen2
