#include "gen2/tag_state.hpp"

namespace rfidsim::gen2 {

namespace {

constexpr Session kAllSessions[] = {Session::S0, Session::S1, Session::S2,
                                    Session::S3};

}  // namespace

void TagState::set_powered(bool powered, double t_s) {
  if (powered == powered_) return;
  powered_ = powered;
  if (powered) {
    // Regaining power: any flag whose persistence expired while the tag
    // was dark has reverted to A. Resolve that now, per session, so
    // subsequent queries (and the pure flag() math, which must not
    // resurrect a decayed flag after repower) see it.
    for (const Session s : kAllSessions) {
      const std::size_t i = index(s);
      if (flags_[i] != InventoriedFlag::B) continue;
      bool decayed = false;
      switch (s) {
        case Session::S0:
          // No persistence: any power loss clears it.
          decayed = true;
          break;
        case Session::S1:
          // Decays from the set time regardless of power.
          decayed = t_s - flag_set_time_s_[i] > flag_persistence_s(s);
          break;
        case Session::S2:
        case Session::S3:
          // Persist while powered; the dark interval is what counts.
          decayed = t_s - power_loss_time_s_ > flag_persistence_s(s);
          break;
      }
      if (decayed) flags_[i] = InventoriedFlag::A;
    }
    state_ = TagProtocolState::Ready;
  } else {
    power_loss_time_s_ = t_s;
    state_ = TagProtocolState::Unpowered;
    slot_counter_ = 0;
  }
}

void TagState::draw_slot(int q, Rng& rng) {
  const std::uint32_t frame = q <= 0 ? 1u : (1u << q);
  slot_counter_ = static_cast<std::uint32_t>(rng.uniform_int(0, frame - 1));
  state_ = slot_counter_ == 0 ? TagProtocolState::Reply : TagProtocolState::Arbitrate;
}

void TagState::on_query(int q, InventoriedFlag target, Session session, double t_s,
                        Rng& rng) {
  if (!powered_) return;
  round_session_ = session;
  if (flag(t_s, session) != target) {
    state_ = TagProtocolState::Ready;
    return;
  }
  draw_slot(q, rng);
}

void TagState::on_query_adjust(int q, Rng& rng) {
  if (!powered_) return;
  if (state_ != TagProtocolState::Arbitrate && state_ != TagProtocolState::Reply) return;
  draw_slot(q, rng);
}

void TagState::on_query_rep() {
  if (!powered_) return;
  if (state_ == TagProtocolState::Arbitrate) {
    if (slot_counter_ > 0) --slot_counter_;
    if (slot_counter_ == 0) state_ = TagProtocolState::Reply;
  } else if (state_ == TagProtocolState::Reply) {
    // Spec: an unacknowledged replying tag that hears QueryRep returns to
    // Arbitrate with slot 0x7FFF (effectively out of this round). We drop
    // it to Ready, which has the same observable effect for inventory.
    state_ = TagProtocolState::Ready;
  }
}

void TagState::on_acknowledged(double t_s) {
  if (!powered_ || state_ != TagProtocolState::Reply) return;
  state_ = TagProtocolState::Acknowledged;
  // Spec behaviour: singulation TOGGLES the inventoried flag of the
  // session this round runs on (so a B-targeted round hands the tag back
  // to A). The other sessions' flags are untouched. The toggle acts on
  // the EFFECTIVE flag — a stored B whose persistence already lapsed
  // (S1's powered decay) is an A, so acknowledging it sets B afresh
  // rather than "toggling" the stale value.
  const std::size_t i = index(round_session_);
  if (flag(t_s, round_session_) == InventoriedFlag::A) {
    flags_[i] = InventoriedFlag::B;
    flag_set_time_s_[i] = t_s;
  } else {
    flags_[i] = InventoriedFlag::A;
  }
}

void TagState::on_reply_lost(int q, Rng& rng) {
  if (!powered_ || state_ != TagProtocolState::Reply) return;
  draw_slot(q, rng);
}

InventoriedFlag TagState::flag(double t_s, Session session) const {
  const std::size_t i = index(session);
  if (flags_[i] == InventoriedFlag::A) return InventoriedFlag::A;
  switch (session) {
    case Session::S0:
      // Zero persistence: the flag only holds while the tag is energized.
      return powered_ ? InventoriedFlag::B : InventoriedFlag::A;
    case Session::S1:
      // The S1 timer runs from the moment the flag was set, powered or
      // not — a continuously-energized S1 tag re-enters inventory once
      // its window lapses (spec 6.3.2.4; this is what makes S1 the
      // "repeated-census" session).
      return t_s - flag_set_time_s_[i] > flag_persistence_s(session)
                 ? InventoriedFlag::A
                 : InventoriedFlag::B;
    case Session::S2:
    case Session::S3:
      // Indefinite persistence while powered; the decay clock only runs
      // in the dark.
      if (!powered_ && t_s - power_loss_time_s_ > flag_persistence_s(session)) {
        return InventoriedFlag::A;
      }
      return InventoriedFlag::B;
  }
  return InventoriedFlag::B;
}

}  // namespace rfidsim::gen2
