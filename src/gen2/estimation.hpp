// Tag-population estimation from slotted-ALOHA statistics.
//
// The paper's related work ([18] Vogt, "Multiple object identification
// with passive RFID tags"; [9] Kodialam & Nandagopal, "Fast and reliable
// estimation schemes in RFID systems") estimates how many tags are present
// from the pattern of empty/singleton/collided slots, without reading them
// all — used by readers to pick a good frame size (Q) and by applications
// to sanity-check pallet counts. The paper excludes protocol changes from
// its scope but cites these as the complementary MAC-level approach; we
// implement them as an extension over InventoryRoundResult's slot counts.
#pragma once

#include <cstddef>

#include "gen2/inventory.hpp"

namespace rfidsim::gen2 {

/// Slot outcome counts of one (or several pooled) frames.
struct FrameObservation {
  std::size_t frame_size = 0;   ///< Total slots offered (N).
  std::size_t empty = 0;        ///< Slots with no reply (N0).
  std::size_t singleton = 0;    ///< Slots with exactly one reply (N1).
  std::size_t collision = 0;    ///< Slots with >= 2 replies (Nk).

  /// Builds an observation from an inventory round. Successful
  /// singulations are singleton slots; capture-effect rescues still hide a
  /// collision underneath, but the reader cannot tell — neither can we.
  static FrameObservation from_round(const InventoryRoundResult& round);
};

/// Vogt's lower bound: every collision hides at least two tags, every
/// singleton exactly one.
std::size_t estimate_lower_bound(const FrameObservation& obs);

/// Vogt's collision-factor estimate: a collided slot holds ~2.39 tags on
/// average under Poisson occupancy, so n ~ N1 + 2.39 * Nk.
double estimate_collision_factor(const FrameObservation& obs);

/// Maximum-likelihood-style estimate from the empty-slot fraction: with n
/// tags in N slots, E[N0]/N = (1 - 1/N)^n, inverted for n. Falls back to
/// the collision-factor estimate when there are no empty slots (fully
/// saturated frame) or the frame is degenerate.
double estimate_from_empties(const FrameObservation& obs);

/// The frame size (as a Q exponent) that maximizes throughput for an
/// estimated population: slotted ALOHA peaks at frame size ~ n, so
/// Q = round(log2(max(n, 1))) clamped to [min_q, max_q].
int recommended_q(double estimated_population, int min_q = 0, int max_q = 15);

}  // namespace rfidsim::gen2
