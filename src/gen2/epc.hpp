// EPC identifiers.
//
// Gen 2 tags carry a 96-bit Electronic Product Code. The simulator only
// needs identity semantics plus a printable form, so the code is stored as
// a 96-bit value in two words with helpers for rendering the conventional
// hex form.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace rfidsim::gen2 {

/// A 96-bit EPC. `hi` holds the top 32 bits, `lo` the bottom 64.
struct Epc {
  std::uint32_t hi = 0;
  std::uint64_t lo = 0;

  constexpr auto operator<=>(const Epc&) const = default;

  /// Builds an EPC from a simple serial number (company prefix zeroed).
  static constexpr Epc from_serial(std::uint64_t serial) { return Epc{0, serial}; }

  /// Renders as 24 hex digits, e.g. "0000000000000000000000FF".
  std::string to_hex() const;
};

inline std::string Epc::to_hex() const {
  static const char* digits = "0123456789ABCDEF";
  std::string out(24, '0');
  std::uint32_t h = hi;
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[h & 0xF];
    h >>= 4;
  }
  std::uint64_t l = lo;
  for (int i = 23; i >= 8; --i) {
    out[static_cast<std::size_t>(i)] = digits[l & 0xF];
    l >>= 4;
  }
  return out;
}

}  // namespace rfidsim::gen2
