// Reader-to-reader interference and dense-reader mode.
//
// Two readers covering the same portal both transmit a strong continuous
// carrier. Without spectral coordination a tag hears the superposition and
// cannot demodulate either reader's commands — the mechanism behind the
// paper's headline negative result: "read reliability was severely reduced
// ... due to reader-to-reader RF interference. Our readers did not support
// dense-reader mode." Gen 2's optional dense-reader mode (DRM) confines
// each reader's spectrum to its own channel, restoring near-independence.
#pragma once

#include <cstddef>
#include <vector>

#include "common/vec3.hpp"

namespace rfidsim::gen2 {

/// Spectrum/transmit state of one reader, as seen by the interference model.
struct ReaderRfState {
  Vec3 position;            ///< Antenna cluster location.
  int channel = 0;          ///< Occupied channel index.
  bool transmitting = true; ///< Carrier on (continuous/buffered mode => on).
  bool dense_reader_mode = false;
};

/// Parameters of the jam-probability model.
struct InterferenceParams {
  /// Probability one reader command is lost when a co-channel,
  /// non-DRM-coordinated reader transmits within interference range.
  double cochannel_jam_probability = 0.8;
  /// Residual loss under DRM / distinct channels (spectral regrowth,
  /// imperfect filters).
  double drm_jam_probability = 0.03;
  /// Readers farther apart than this do not interfere (portal scale).
  double interference_range_m = 15.0;
};

/// Computes per-command jam probabilities for sets of co-located readers.
class ReaderInterference {
 public:
  ReaderInterference() = default;
  explicit ReaderInterference(InterferenceParams params) : params_(params) {}

  /// Probability that a command from reader `self` is jammed given the
  /// other readers' states. Multiple interferers compound independently:
  /// p = 1 - prod(1 - p_i).
  double command_jam_probability(const ReaderRfState& self,
                                 const std::vector<ReaderRfState>& others) const;

  /// Assigns channels to `count` readers: with DRM they get distinct
  /// channels (0, 1, 2, ...); without DRM 2006-era firmware parks all
  /// readers on the same default channel.
  static std::vector<int> assign_channels(std::size_t count, bool dense_reader_mode);

  const InterferenceParams& params() const { return params_; }

 private:
  InterferenceParams params_;
};

}  // namespace rfidsim::gen2
