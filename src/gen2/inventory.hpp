// Reader-side Gen 2 inventory: slotted-ALOHA rounds with the Q algorithm.
//
// One InventoryEngine::run_round executes a full Query...QueryRep frame
// against a population of TagState machines:
//   * each powered, flag-matching tag draws a slot in [0, 2^Q),
//   * per slot the engine classifies empty / single / collided (with a
//     capture-effect escape hatch for power-dominant tags),
//   * single replies go through RN16 decode -> ACK -> EPC decode, each leg
//     subject to the physical-layer success probability and to reader
//     interference jamming,
//   * Qfp floats up by step_collision and down by step_empty, optionally issuing
//     mid-round QueryAdjust.
// The result carries both the singulated tags and the time the round
// consumed — time a moving tag does not get back.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "gen2/session.hpp"
#include "gen2/tag_state.hpp"
#include "gen2/timing.hpp"

namespace rfidsim::gen2 {

/// Per-tag physical-link quality for the duration of one round.
struct TagLink {
  /// Tag is energized (forward link closed under this round's fading).
  bool powered = false;
  /// Probability the reader decodes one tag transmission (RN16 or EPC).
  double reply_decode_probability = 1.0;
  /// Backscatter power at the reader, for capture-effect comparisons.
  DbmPower rx_power{-60.0};
};

/// Inventory-engine configuration.
struct InventoryConfig {
  QAlgorithmParams q{};
  LinkTiming timing{};
  Session session = Session::S0;
  InventoriedFlag target = InventoriedFlag::A;
  /// If one colliding reply out-powers all others by at least this much,
  /// the reader captures it instead of losing the slot.
  double capture_threshold_db = 6.0;
  /// Probability a reader *command* is unintelligible to tags because
  /// another reader is transmitting (see gen2::ReaderInterference).
  double command_jam_probability = 0.0;
  /// Issue QueryAdjust when round(Qfp) changes mid-round (true matches
  /// modern readers; false adjusts only between rounds).
  bool adjust_mid_round = true;
  /// Dual-target inventory: alternate the Query's target flag (A, B, A,
  /// ...) between rounds so already-read tags answer again. Standard
  /// reader practice when the application wants RSSI tracked across a
  /// whole pass (e.g. zone filtering) instead of one read per tag.
  bool dual_target = false;
  /// Multi-packet reception capability: the maximum number of simultaneous
  /// tag replies the reader can separate and decode in one slot (Pudasaini
  /// et al.). 1 is a conventional reader — slots with two or more replies
  /// are collisions unless the capture effect saves the strongest — and
  /// the engine is then bit-identical to the pre-MPR implementation (same
  /// code path, same RNG draw order; enforced by test). With M >= 2 a slot
  /// carrying up to M replies decodes them all, each reply still running
  /// its own RN16 -> ACK -> EPC legs; slots with more than M replies fall
  /// back to the capture check.
  int mpr_capacity = 1;
};

/// Outcome of one inventory round.
struct InventoryRoundResult {
  std::vector<std::size_t> singulated;  ///< Tag indices read this round.
  std::size_t total_slots = 0;
  std::size_t empty_slots = 0;
  std::size_t collision_slots = 0;
  std::size_t success_slots = 0;  ///< Slots with at least one decode.
  /// Successful decodes that happened in slots carrying two or more
  /// simultaneously-decoded replies — the reads only a multi-packet-
  /// reception reader gets. Always 0 when mpr_capacity == 1.
  std::size_t mpr_decodes = 0;
  double duration_s = 0.0;
  double final_q = 0.0;
};

/// Executes inventory rounds over a tag population.
class InventoryEngine {
 public:
  explicit InventoryEngine(InventoryConfig config) : config_(config) {}

  /// Runs one full round starting at simulation time `t_s`.
  ///
  /// `states` and `links` are parallel arrays (one entry per tag); states
  /// persist across rounds (inventoried flags, power). The caller is
  /// responsible for setting each tag's power via TagState::set_powered
  /// before the round (the engine does not evaluate RF).
  InventoryRoundResult run_round(std::vector<TagState>& states,
                                 const std::vector<TagLink>& links, double t_s,
                                 Rng& rng);

  const InventoryConfig& config() const { return config_; }
  /// Current floating-point Q (persists across rounds, as real readers do).
  double qfp() const { return qfp_; }
  /// Resets Qfp to the configured initial value.
  void reset_q() { qfp_ = config_.q.initial_q; }

 private:
  InventoryConfig config_;
  double qfp_ = -1.0;  ///< Lazily initialized from config on first round.
  /// Which flag the next round targets (dual-target mode toggles this).
  InventoriedFlag next_target_ = InventoriedFlag::A;
};

}  // namespace rfidsim::gen2
