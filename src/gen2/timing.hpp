// EPC Class-1 Generation-2 link timing.
//
// The MAC's contribution to (un)reliability is time: a tag moving at 1 m/s
// is only in the read zone for a couple of seconds, and every slot —
// empty, collided, or successful — spends some of that window. The paper
// measures ~0.02 s per successful tag read end to end on its 2006-era
// Matrix AR400 (including reader-side overhead); these parameters are
// calibrated to land there while keeping the correct relative costs of
// empty vs. collided vs. successful slots.
#pragma once

#include <cstddef>

namespace rfidsim::gen2 {

/// Durations of the Gen 2 air-interface primitives, in seconds.
struct LinkTiming {
  /// Reader Query / QueryAdjust command plus settling.
  double query_s = 1.5e-3;
  /// QueryRep (advance to next slot).
  double query_rep_s = 0.4e-3;
  /// An empty slot: QueryRep + T3 timeout.
  double empty_slot_s = 0.6e-3;
  /// A collided slot: QueryRep + RN16 duration + recovery.
  double collided_slot_s = 1.8e-3;
  /// A successful singulation: RN16 + ACK + PC/EPC/CRC backscatter.
  double singulation_s = 3.8e-3;
  /// Fixed reader-side overhead per inventory round (firmware, host I/O).
  /// The AR400's HTTP-polled firmware makes this large; modern readers are
  /// an order of magnitude faster.
  double round_overhead_s = 12e-3;

  /// End-to-end time to inventory `n` tags assuming ideal singulation
  /// (n successes, ~n empty slots, one round): the "~0.02 s per tag" rule.
  double ideal_inventory_time_s(std::size_t n) const {
    return round_overhead_s + query_s +
           static_cast<double>(n) * (singulation_s + empty_slot_s);
  }
};

/// Q-algorithm parameters (EPCglobal Gen 2 Annex D).
///
/// The collision step must exceed the empty step: with symmetric steps two
/// persistently colliding tags can pin Q at zero forever (every collision
/// +C is cancelled by the next empty -C), a livelock real reader firmware
/// avoids the same way.
struct QAlgorithmParams {
  double initial_q = 4.0;      ///< Starting Q (frame size 2^Q).
  double step_collision = 0.45;  ///< Qfp increase per collided slot.
  double step_empty = 0.2;       ///< Qfp decrease per empty slot.
  int min_q = 0;
  int max_q = 15;
  /// Abort an inventory round after this many slots (runaway guard).
  std::size_t max_slots_per_round = 4096;
};

}  // namespace rfidsim::gen2
