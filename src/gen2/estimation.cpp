#include "gen2/estimation.hpp"

#include <algorithm>
#include <cmath>

namespace rfidsim::gen2 {

FrameObservation FrameObservation::from_round(const InventoryRoundResult& round) {
  FrameObservation obs;
  obs.frame_size = round.total_slots;
  obs.empty = round.empty_slots;
  obs.singleton = round.success_slots;
  obs.collision = round.collision_slots;
  return obs;
}

std::size_t estimate_lower_bound(const FrameObservation& obs) {
  return obs.singleton + 2 * obs.collision;
}

double estimate_collision_factor(const FrameObservation& obs) {
  // Vogt's simulation-derived expectation of ~2.3922 tags per collided
  // slot when occupancy is near the throughput optimum.
  return static_cast<double>(obs.singleton) + 2.3922 * static_cast<double>(obs.collision);
}

double estimate_from_empties(const FrameObservation& obs) {
  if (obs.frame_size < 2 || obs.empty == 0 || obs.empty >= obs.frame_size) {
    return estimate_collision_factor(obs);
  }
  const double n_slots = static_cast<double>(obs.frame_size);
  const double p_empty = static_cast<double>(obs.empty) / n_slots;
  // E[empty fraction] = (1 - 1/N)^n  =>  n = ln(p) / ln(1 - 1/N).
  const double n = std::log(p_empty) / std::log(1.0 - 1.0 / n_slots);
  return std::max(n, static_cast<double>(estimate_lower_bound(obs)));
}

int recommended_q(double estimated_population, int min_q, int max_q) {
  const double n = std::max(estimated_population, 1.0);
  const int q = static_cast<int>(std::lround(std::log2(n)));
  return std::clamp(q, min_q, max_q);
}

}  // namespace rfidsim::gen2
