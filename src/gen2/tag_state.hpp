// Gen 2 tag-side protocol state machine.
//
// Implements the inventory-relevant subset of the EPC C1G2 tag states:
// Ready -> Arbitrate -> Reply -> Acknowledged, with a per-session
// inventoried flag. Power-sensitive behaviour matters: a tag that browns
// out forgets its slot counter, and an S0 flag resets on power loss —
// both visible in continuous-mode portal traces.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "gen2/session.hpp"

namespace rfidsim::gen2 {

/// Protocol state of one tag during inventory.
enum class TagProtocolState {
  Unpowered,     ///< Below sensitivity; does not participate.
  Ready,         ///< Powered, waiting for a Query.
  Arbitrate,     ///< Holds a nonzero slot counter.
  Reply,         ///< Slot counter hit zero; backscattering RN16.
  Acknowledged,  ///< ACKed; has sent PC/EPC/CRC.
};

/// Tag-side state machine for the inventory rounds of one session.
class TagState {
 public:
  TagState() = default;

  /// Powers the tag on/off at simulation time `t_s`. Power loss drops the
  /// tag out of any round in progress; an S0 inventoried flag resets
  /// immediately and persistent sessions start their decay timer.
  void set_powered(bool powered, double t_s, Session session);

  /// True if the tag currently holds energy.
  bool powered() const { return powered_; }

  /// Handles a Query targeting flag `target`: a powered tag whose flag
  /// matches draws a slot in [0, 2^q - 1] and enters Arbitrate (or Reply
  /// if it drew zero). A mismatched tag stays silent.
  void on_query(int q, InventoriedFlag target, Session session, double t_s, Rng& rng);

  /// Handles a QueryAdjust: redraw the slot with the new q.
  void on_query_adjust(int q, Rng& rng);

  /// Handles a QueryRep (end of the current slot): decrements the slot
  /// counter; a tag reaching zero enters Reply.
  void on_query_rep();

  /// True if the tag is currently replying (slot counter zero).
  bool replying() const { return state_ == TagProtocolState::Reply; }

  /// Handles a successful ACK of this tag's RN16: the tag transmits its
  /// EPC, toggles its inventoried flag, and leaves the round.
  void on_acknowledged(double t_s);

  /// The reader failed to ACK (collision or decode loss): tag returns to
  /// Arbitrate with a fresh slot draw at the current q.
  void on_reply_lost(int q, Rng& rng);

  /// Current inventoried flag at time `t_s`, accounting for persistence
  /// decay while unpowered.
  InventoriedFlag flag(double t_s, Session session) const;

  TagProtocolState state() const { return state_; }
  std::uint32_t slot_counter() const { return slot_counter_; }

 private:
  void draw_slot(int q, Rng& rng);

  TagProtocolState state_ = TagProtocolState::Unpowered;
  bool powered_ = false;
  std::uint32_t slot_counter_ = 0;
  InventoriedFlag flag_ = InventoriedFlag::A;
  /// Time the flag was last set to B (for persistence decay).
  double flag_set_time_s_ = -1e18;
  /// Time power was lost (persistence decay reference while unpowered).
  double power_loss_time_s_ = -1e18;
};

}  // namespace rfidsim::gen2
