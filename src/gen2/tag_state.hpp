// Gen 2 tag-side protocol state machine.
//
// Implements the inventory-relevant subset of the EPC C1G2 tag states:
// Ready -> Arbitrate -> Reply -> Acknowledged, with one inventoried flag
// PER SESSION (S0-S3) — the four flags are independent, which is what lets
// two readers (or one reader running redundant passes) inventory the same
// population on different sessions without stepping on each other's
// progress. Power-sensitive behaviour matters: a tag that browns out
// forgets its slot counter, an S0 flag resets on power loss, S1 decays on
// its own timer regardless of power, and S2/S3 persist indefinitely while
// energized.
#pragma once

#include <array>
#include <cstdint>

#include "common/rng.hpp"
#include "gen2/session.hpp"

namespace rfidsim::gen2 {

/// Protocol state of one tag during inventory.
enum class TagProtocolState {
  Unpowered,     ///< Below sensitivity; does not participate.
  Ready,         ///< Powered, waiting for a Query.
  Arbitrate,     ///< Holds a nonzero slot counter.
  Reply,         ///< Slot counter hit zero; backscattering RN16.
  Acknowledged,  ///< ACKed; has sent PC/EPC/CRC.
};

/// Tag-side state machine for inventory rounds. The protocol state
/// (arbitration) is shared — a tag participates in one round at a time —
/// but the inventoried flags are kept per session, as the spec requires.
class TagState {
 public:
  TagState() = default;

  /// Powers the tag on/off at simulation time `t_s`. Power loss drops the
  /// tag out of any round in progress; the S0 inventoried flag resets
  /// immediately and the persistent sessions start their decay timers.
  /// Regaining power resolves any decay that completed while dark, for
  /// every session at once (power is session-agnostic).
  void set_powered(bool powered, double t_s);

  /// True if the tag currently holds energy.
  bool powered() const { return powered_; }

  /// Handles a Query targeting flag `target` on `session`: a powered tag
  /// whose flag for that session matches draws a slot in [0, 2^q - 1] and
  /// enters Arbitrate (or Reply if it drew zero). A mismatched tag stays
  /// silent. The tag latches `session` as the session of the round in
  /// progress (the spec's Query carries it), so a later ACK toggles the
  /// right flag.
  void on_query(int q, InventoriedFlag target, Session session, double t_s, Rng& rng);

  /// Handles a QueryAdjust: redraw the slot with the new q.
  void on_query_adjust(int q, Rng& rng);

  /// Handles a QueryRep (end of the current slot): decrements the slot
  /// counter; a tag reaching zero enters Reply.
  void on_query_rep();

  /// True if the tag is currently replying (slot counter zero).
  bool replying() const { return state_ == TagProtocolState::Reply; }

  /// Handles a successful ACK of this tag's RN16: the tag transmits its
  /// EPC, toggles the inventoried flag of the session the current round
  /// runs on, and leaves the round. Flags of the other sessions are
  /// untouched — session independence is the whole point.
  void on_acknowledged(double t_s);

  /// The reader failed to ACK (collision or decode loss): tag returns to
  /// Arbitrate with a fresh slot draw at the current q.
  void on_reply_lost(int q, Rng& rng);

  /// Current inventoried flag of `session` at time `t_s`, accounting for
  /// persistence decay: S0 holds only while powered, S1 decays on a timer
  /// from the moment the flag was set REGARDLESS of power (the spec's
  /// "0.5-5 s nominal" applies to energized tags too), S2/S3 persist
  /// indefinitely while powered and decay after their window once dark.
  InventoriedFlag flag(double t_s, Session session) const;

  /// Session of the round this tag is currently (or was last) engaged in.
  Session round_session() const { return round_session_; }

  TagProtocolState state() const { return state_; }
  std::uint32_t slot_counter() const { return slot_counter_; }

 private:
  static constexpr std::size_t index(Session s) { return static_cast<std::size_t>(s); }
  void draw_slot(int q, Rng& rng);

  TagProtocolState state_ = TagProtocolState::Unpowered;
  bool powered_ = false;
  std::uint32_t slot_counter_ = 0;
  /// Session carried by the Query of the round in progress.
  Session round_session_ = Session::S0;
  /// One inventoried flag per session S0-S3.
  std::array<InventoriedFlag, 4> flags_{InventoriedFlag::A, InventoriedFlag::A,
                                        InventoriedFlag::A, InventoriedFlag::A};
  /// Time each session's flag was last set to B (persistence reference).
  std::array<double, 4> flag_set_time_s_{-1e18, -1e18, -1e18, -1e18};
  /// Time power was lost (S2/S3 persistence reference while unpowered).
  double power_loss_time_s_ = -1e18;
};

}  // namespace rfidsim::gen2
