#include "gen2/reliable/fusion.hpp"

#include <cmath>

#include "common/error.hpp"
#include "obs/attribution.hpp"

namespace rfidsim::gen2::reliable {

SessionFusion::SessionFusion(FusionConfig config) : config_(std::move(config)) {
  require(!config_.sessions.empty(), "SessionFusion: need at least one session");
  require(config_.prior > 0.0 && config_.prior < 1.0,
          "SessionFusion: prior must be in (0, 1)");
  for (const SessionModel& m : config_.sessions) {
    require(m.detection_rate >= 0.0 && m.detection_rate <= 1.0,
            "SessionFusion: detection_rate must be in [0, 1]");
    require(m.false_positive_rate >= 0.0 && m.false_positive_rate < 1.0,
            "SessionFusion: false_positive_rate must be in [0, 1)");
    require(m.false_positive_rate <= m.detection_rate,
            "SessionFusion: false_positive_rate must not exceed detection_rate");
  }
}

double SessionFusion::fused_detection_probability() const {
  double miss = 1.0;
  for (const SessionModel& m : config_.sessions) miss *= 1.0 - m.detection_rate;
  return 1.0 - miss;
}

double SessionFusion::posterior(std::size_t seen) const {
  const std::size_t k = config_.sessions.size();
  if (seen > k) seen = k;
  // Exchangeable-session likelihood: with only the COUNT of positive
  // sessions available, use the mean rates — exact when the K models are
  // identical (the simulator's usual case), a tight approximation
  // otherwise (the count is then not a sufficient statistic).
  double p = 0.0;
  double f = 0.0;
  for (const SessionModel& m : config_.sessions) {
    p += m.detection_rate;
    f += m.false_positive_rate;
  }
  p /= static_cast<double>(k);
  f /= static_cast<double>(k);

  // P(count | present) vs P(count | absent), binomial kernels (the common
  // binomial coefficient cancels in the ratio).
  const double miss = static_cast<double>(k - seen);
  const double present_lik = std::pow(p, static_cast<double>(seen)) *
                             std::pow(1.0 - p, miss);
  const double absent_lik = std::pow(f, static_cast<double>(seen)) *
                            std::pow(1.0 - f, miss);
  // std::pow(0, 0) == 1, so f == 0 with seen == 0 degrades gracefully;
  // f == 0 with seen > 0 zeroes absent_lik and the posterior saturates.
  const double num = config_.prior * present_lik;
  const double den = num + (1.0 - config_.prior) * absent_lik;
  if (den <= 0.0) {
    // Both hypotheses assign zero probability to the observation (e.g.
    // p == 1 but seen < K): the observation contradicts the model; fall
    // back to the prior rather than divide by zero.
    return config_.prior;
  }
  return num / den;
}

bool SessionFusion::decide(std::size_t seen, double confidence) const {
  switch (config_.rule) {
    case FusionRule::kAnyOf: return seen >= 1;
    case FusionRule::kMajority: return 2 * seen > config_.sessions.size();
    case FusionRule::kWeighted: return confidence >= config_.confidence_threshold;
  }
  return false;
}

FusionResult SessionFusion::fuse(const std::vector<std::size_t>& sessions_seen) const {
  obs::prof::ScopedPhase phase(obs::prof::Phase::kGen2Fusion);

  FusionResult result;
  result.fused_detection_probability = fused_detection_probability();
  result.verdicts.reserve(sessions_seen.size());

  // The posterior depends only on the count, so precompute the K + 1
  // possible values instead of running std::pow per tag.
  const std::size_t k = config_.sessions.size();
  std::vector<double> posterior_by_count(k + 1);
  for (std::size_t c = 0; c <= k; ++c) posterior_by_count[c] = posterior(c);

  for (std::size_t tag = 0; tag < sessions_seen.size(); ++tag) {
    TagVerdict v;
    v.tag = tag;
    v.sessions_seen = sessions_seen[tag] > k ? k : sessions_seen[tag];
    v.confidence = posterior_by_count[v.sessions_seen];
    v.present = decide(v.sessions_seen, v.confidence);
    if (v.present) ++result.detected;
    result.verdicts.push_back(v);
  }
  return result;
}

}  // namespace rfidsim::gen2::reliable
