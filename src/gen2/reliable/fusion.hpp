// Session fusion: turning K per-session read sets into one decision.
//
// Following Jacobsen et al. ("Reliable Identification of RFID Tags Using
// Multiple Independent Reader Sessions"): each of the K session passes is
// a noisy binary detector of every tag's presence. Under per-session
// detection rate p_k (true positive) and false-positive rate f_k (ghost
// reads: cross-portal leakage, EPC decode errors that alias to a valid
// ID), the posterior that a tag is present given the subset S of sessions
// that read it is a likelihood-ratio test
//
//     P(present | S) = prior * prod L_k  /  (prior * prod L_k + (1-prior) )
//     with L_k = p_k / f_k for k in S, (1-p_k)/(1-f_k) otherwise
//
// and the fusion RULES are thresholds on that statistic: any-of (declare
// present if any session saw the tag — maximizes detection, the DSN
// paper's R_C = 1 - prod(1-p_k) regime), majority (> K/2 sessions — cuts
// false positives at the cost of detection), and weighted (the full
// likelihood test with a confidence threshold — dominates both when the
// rates are known). This module is estimator-side only: it consumes read
// sets, never touches tag state, and is marked with its own obs phase
// (gen2_fusion) for stage attribution.
#pragma once

#include <cstddef>
#include <vector>

#include "gen2/session.hpp"

namespace rfidsim::gen2::reliable {

/// Decision rule fusing K per-session detections.
enum class FusionRule {
  kAnyOf,     ///< Present iff >= 1 session read the tag.
  kMajority,  ///< Present iff > K/2 sessions read the tag.
  kWeighted,  ///< Present iff the Bayes posterior >= confidence_threshold.
};

/// Detector model of one session pass.
struct SessionModel {
  Session session = Session::S0;
  /// P(session reads tag | tag present in the read zone).
  double detection_rate = 0.9;
  /// P(session reads tag | tag absent). Must be < detection_rate for the
  /// likelihood ratio to point the right way; zero is allowed (any read
  /// becomes decisive) and is the common simulator case.
  double false_positive_rate = 0.0;
};

struct FusionConfig {
  std::vector<SessionModel> sessions;  ///< One entry per pass, K = size().
  FusionRule rule = FusionRule::kAnyOf;
  /// Prior P(tag present) before any session reports. 0.5 makes the
  /// weighted rule a pure likelihood-ratio test.
  double prior = 0.5;
  /// kWeighted declares presence when the posterior reaches this.
  double confidence_threshold = 0.9;
};

/// Fused verdict for one tag.
struct TagVerdict {
  std::size_t tag = 0;
  std::size_t sessions_seen = 0;  ///< How many of the K passes read it.
  bool present = false;           ///< The configured rule's decision.
  double confidence = 0.0;        ///< Bayes posterior P(present | reads).
};

/// Fused verdicts for a population.
struct FusionResult {
  std::vector<TagVerdict> verdicts;  ///< One per tag index, ascending.
  std::size_t detected = 0;          ///< Verdicts with present == true.
  /// The independence-model prediction of the any-of detection rate,
  /// R_C = 1 - prod_k (1 - p_k): what the ablation compares measurements
  /// against.
  double fused_detection_probability = 0.0;
};

/// Stateless fusion estimator over per-session read sets.
class SessionFusion {
 public:
  explicit SessionFusion(FusionConfig config);

  /// Fuses the per-session observation counts: `sessions_seen[tag]` is how
  /// many of the K passes read that tag (MultiSessionResult::sessions_seen
  /// feeds this directly). The count collapses WHICH sessions saw the tag
  /// into how many, so the posterior uses the count-weighted likelihood
  /// (exact when the K models are identical, the simulator's usual case;
  /// a tight approximation otherwise).
  FusionResult fuse(const std::vector<std::size_t>& sessions_seen) const;

  /// Posterior P(present) for a tag seen by `seen` of the K sessions.
  /// Monotone nondecreasing in `seen` whenever every p_k > f_k.
  double posterior(std::size_t seen) const;

  /// 1 - prod_k (1 - p_k): the analytical any-of fused detection rate.
  double fused_detection_probability() const;

  const FusionConfig& config() const { return config_; }

 private:
  bool decide(std::size_t seen, double confidence) const;

  FusionConfig config_;
};

}  // namespace rfidsim::gen2::reliable
