// Multi-packet-reception (MPR) capable readers and their optimal Q.
//
// Pudasaini et al., "Optimum Tag Reading Efficiency of Multi-Packet
// Reception Capable RFID Readers": a reader that can separate up to M
// simultaneous backscatter replies turns collided slots into (partial)
// successes, and the frame size that maximizes tag throughput is no longer
// L = N (the classic slotted-ALOHA result for M = 1) but L = N / lambda*(M)
// where lambda*(M) is the per-slot offered load maximizing the expected
// number of decoded replies per slot
//
//     T(lambda, M) = sum_{k=1..M} k * e^{-lambda} lambda^k / k!
//
// under the Poisson approximation of slot occupancy. lambda*(1) = 1
// recovers Q* = log2(N); lambda*(2) is the golden ratio (1+sqrt(5))/2 —
// the root of 1 + lambda - lambda^2 — and lambda* grows roughly linearly
// in M, so an MPR reader should start its inventory with a SMALLER Q than
// a conventional one for the same population. The engine side of MPR (the
// per-slot multi-decode) lives in gen2::InventoryEngine behind
// InventoryConfig::mpr_capacity; this module adds the planning math and a
// convenience wrapper that applies it.
#pragma once

#include <cstddef>

#include "gen2/inventory.hpp"

namespace rfidsim::gen2::reliable {

/// Expected decoded replies per slot at offered load `lambda` for a reader
/// that separates up to `m` simultaneous replies (Poisson slot occupancy).
/// The m -> infinity limit is lambda itself.
double expected_decodes_per_slot(double lambda, int m);

/// The load lambda*(m) maximizing expected_decodes_per_slot. Deterministic
/// closed-form evaluation: the optimum is the unique positive root of
/// d T / d lambda = 0, bracketed in [1, m + 1] and bisected to 1e-12 —
/// pure arithmetic, no RNG, identical on every platform. lambda*(1) == 1
/// exactly; lambda*(2) == (1 + sqrt(5)) / 2.
double optimal_slot_load(int m);

/// The optimal initial Q for inventorying an (estimated) population of
/// `population` tags with an MPR-m reader: round(log2(population /
/// lambda*(m))), clamped to [min_q, max_q]. The m = 1 case is the
/// textbook Q* = round(log2(N)).
int optimal_q(std::size_t population, int m, int min_q = 0, int max_q = 15);

/// Q-offset an MPR-m reader should apply relative to a conventional
/// reader's Q* = log2(N): the (negative) closed-form log2(lambda*(1)) -
/// log2(lambda*(m)) = -log2(lambda*(m)). Exposed separately because the
/// ablation reports it against the simulated optimum.
double optimal_q_offset(int m);

/// Convenience wrapper: an InventoryEngine configured for MPR capability
/// `m` with its initial Q planted at the Pudasaini optimum for the
/// expected population. Behaviour with m == 1 and the population-derived
/// Q is exactly the conventional engine's (the underlying round code path
/// is shared and bit-identical; see MprBitIdentity in the tests).
class MprInventoryEngine {
 public:
  /// `base` supplies timing/session/target/Q-adaptation parameters; the
  /// constructor overrides mpr_capacity and, when `population_estimate`
  /// is nonzero, initial_q.
  MprInventoryEngine(InventoryConfig base, int m, std::size_t population_estimate = 0);

  /// Runs one round; see InventoryEngine::run_round.
  InventoryRoundResult run_round(std::vector<TagState>& states,
                                 const std::vector<TagLink>& links, double t_s,
                                 Rng& rng) {
    return engine_.run_round(states, links, t_s, rng);
  }

  const InventoryConfig& config() const { return engine_.config(); }
  double qfp() const { return engine_.qfp(); }
  void reset_q() { engine_.reset_q(); }
  int capability() const { return config().mpr_capacity; }

 private:
  InventoryEngine engine_;
};

}  // namespace rfidsim::gen2::reliable
