// Multi-session inventory: redundant independent reader passes.
//
// Jacobsen et al., "Reliable Identification of RFID Tags Using Multiple
// Independent Reader Sessions": a single inventory pass misses tags with
// probability (1 - P); K passes whose misses are independent miss with
// probability prod_k (1 - P_k) — the DSN paper's R_C model with SESSIONS
// as the redundancy axis instead of tags or antennas. Gen 2 makes the
// passes non-interfering for free: each session S0-S3 carries its own
// inventoried flag, so a tag read on S1 still answers the S2 and S3
// passes. This orchestrator runs K passes over one shared population on
// distinct sessions, either sequentially (pass k completes before pass
// k+1 starts) or interleaved (rounds rotate across sessions), on one
// shared simulation clock so per-session flag persistence (S1's powered
// decay included) behaves exactly as it would in hardware.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "gen2/inventory.hpp"

namespace rfidsim::gen2::reliable {

/// How the K per-session passes share the reader's air time.
enum class SessionSchedule {
  /// Run every round of session k before the first round of session k+1.
  /// Earlier sessions' flags age while later passes run — with S1 in the
  /// mix, a long tail pass can watch pass 1's flags decay and re-answer.
  kSequential,
  /// Rotate: one round on each session in turn, K times over. Spreads
  /// each session's rounds across the whole dwell, which is what a portal
  /// wants when the population is moving through the read zone.
  kInterleaved,
};

/// Configuration of one multi-session inventory sweep.
struct MultiSessionConfig {
  /// Session/target of `base` are overridden per pass; everything else
  /// (timing, Q algorithm, capture, jamming, mpr_capacity) applies to
  /// every pass.
  InventoryConfig base{};
  /// The sessions to run, one pass each; K = sessions.size(). Distinct
  /// sessions are what makes the passes independent — duplicates are
  /// allowed but the repeated pass sees the earlier pass's flags.
  std::vector<Session> sessions = {Session::S1, Session::S2, Session::S3};
  SessionSchedule schedule = SessionSchedule::kInterleaved;
  /// Inventory rounds per session per sweep.
  std::size_t rounds_per_session = 3;
};

/// What one session's pass observed.
struct SessionPassResult {
  Session session = Session::S0;
  /// Distinct tag indices singulated on this session, ascending.
  std::vector<std::size_t> read_tags;
  std::size_t rounds = 0;
  std::size_t singulations = 0;  ///< Including re-reads within the pass.
  std::size_t mpr_decodes = 0;
  double duration_s = 0.0;
};

/// Outcome of one multi-session sweep.
struct MultiSessionResult {
  std::vector<SessionPassResult> per_session;  ///< In config order.
  double total_duration_s = 0.0;
  /// For each tag index (size = population), the number of sessions whose
  /// pass read it at least once: the fusion estimator's raw input.
  std::vector<std::size_t> sessions_seen;
};

/// Runs K independent per-session inventory passes over a shared tag
/// population. Deterministic given the RNG seed; the engines' Qfp state
/// persists across sweeps exactly like a real reader's firmware.
class MultiSessionInventory {
 public:
  explicit MultiSessionInventory(MultiSessionConfig config);

  /// Runs one sweep starting at simulation time `t_s`. `states` persists
  /// across sweeps (per-session flags, power); the caller sets power via
  /// TagState::set_powered, as with InventoryEngine. The sweep advances
  /// an internal clock from t_s by each round's duration — sessions see
  /// flag decay mid-sweep.
  MultiSessionResult run(std::vector<TagState>& states,
                         const std::vector<TagLink>& links, double t_s, Rng& rng);

  const MultiSessionConfig& config() const { return config_; }
  std::size_t session_count() const { return engines_.size(); }
  /// Resets every per-session engine's Qfp (new pass, rebooted reader).
  void reset_q();

 private:
  MultiSessionConfig config_;
  std::vector<InventoryEngine> engines_;  ///< One per configured session.
};

}  // namespace rfidsim::gen2::reliable
