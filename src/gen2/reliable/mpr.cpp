#include "gen2/reliable/mpr.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace rfidsim::gen2::reliable {

double expected_decodes_per_slot(double lambda, int m) {
  require(m >= 1, "expected_decodes_per_slot: capability must be >= 1");
  require(lambda >= 0.0, "expected_decodes_per_slot: load must be >= 0");
  // sum_{k=1..m} k e^{-l} l^k / k!  with the term built incrementally:
  // l^k / k! = (l^{k-1} / (k-1)!) * l / k.
  double term = std::exp(-lambda) * lambda;  // k = 1 term / 1.
  double sum = 0.0;
  for (int k = 1; k <= m; ++k) {
    sum += static_cast<double>(k) * term;
    term *= lambda / static_cast<double>(k + 1);
  }
  return sum;
}

double optimal_slot_load(int m) {
  require(m >= 1, "optimal_slot_load: capability must be >= 1");
  if (m == 1) return 1.0;  // T = lambda e^{-lambda}: the classic optimum.
  // dT/dlambda = e^{-lambda} sum_{k=1..m} l^{k-1} (k - l) / (k-1)!  is
  // positive at l = 1 (the k=1 term is zero, every k >= 2 term positive)
  // and negative at l = m + 1 (every term negative), and T is unimodal on
  // that bracket; bisect the sign change.
  auto derivative = [m](double l) {
    double term = 1.0;  // l^{k-1} / (k-1)! at k = 1.
    double sum = 0.0;
    for (int k = 1; k <= m; ++k) {
      sum += term * (static_cast<double>(k) - l);
      term *= l / static_cast<double>(k);
    }
    return sum;  // e^{-l} factor > 0 dropped: sign-only use.
  };
  double lo = 1.0;
  double hi = static_cast<double>(m) + 1.0;
  for (int iter = 0; iter < 200 && hi - lo > 1e-12; ++iter) {
    const double mid = 0.5 * (lo + hi);
    (derivative(mid) > 0.0 ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

double optimal_q_offset(int m) { return -std::log2(optimal_slot_load(m)); }

int optimal_q(std::size_t population, int m, int min_q, int max_q) {
  require(min_q <= max_q, "optimal_q: min_q must be <= max_q");
  if (population == 0) return min_q;
  const double frame =
      static_cast<double>(population) / optimal_slot_load(m);
  const int q = static_cast<int>(std::lround(std::log2(std::max(frame, 1.0))));
  return std::clamp(q, min_q, max_q);
}

MprInventoryEngine::MprInventoryEngine(InventoryConfig base, int m,
                                       std::size_t population_estimate)
    : engine_([&] {
        require(m >= 1, "MprInventoryEngine: capability must be >= 1");
        base.mpr_capacity = m;
        if (population_estimate > 0) {
          base.q.initial_q = static_cast<double>(
              optimal_q(population_estimate, m, base.q.min_q, base.q.max_q));
        }
        return InventoryEngine(base);
      }()) {}

}  // namespace rfidsim::gen2::reliable
