#include "gen2/reliable/multi_session.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace rfidsim::gen2::reliable {

namespace {

/// Folds one round's outcome into its session's pass accumulator.
void accumulate(SessionPassResult& pass, const InventoryRoundResult& round,
                std::vector<std::size_t>& scratch_seen) {
  ++pass.rounds;
  pass.singulations += round.singulated.size();
  pass.mpr_decodes += round.mpr_decodes;
  pass.duration_s += round.duration_s;
  for (std::size_t tag : round.singulated) {
    if (tag >= scratch_seen.size()) scratch_seen.resize(tag + 1, 0);
    ++scratch_seen[tag];
  }
}

}  // namespace

MultiSessionInventory::MultiSessionInventory(MultiSessionConfig config)
    : config_(std::move(config)) {
  require(!config_.sessions.empty(),
          "MultiSessionInventory: need at least one session");
  require(config_.rounds_per_session > 0,
          "MultiSessionInventory: need at least one round per session");
  engines_.reserve(config_.sessions.size());
  for (Session s : config_.sessions) {
    InventoryConfig c = config_.base;
    c.session = s;
    engines_.emplace_back(c);
  }
}

void MultiSessionInventory::reset_q() {
  for (auto& e : engines_) e.reset_q();
}

MultiSessionResult MultiSessionInventory::run(std::vector<TagState>& states,
                                              const std::vector<TagLink>& links,
                                              double t_s, Rng& rng) {
  const std::size_t k = engines_.size();
  MultiSessionResult result;
  result.per_session.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    result.per_session[i].session = config_.sessions[i];
  }

  // Per-session singulation counts, grown lazily to the max tag index.
  std::vector<std::vector<std::size_t>> seen(k);

  // Both schedules advance ONE shared clock by each round's air time, so a
  // later round — whichever session it belongs to — observes the flag decay
  // produced by every earlier round. That ordering difference is the whole
  // point of having two schedules.
  double clock_s = t_s;
  auto run_one = [&](std::size_t idx) {
    const InventoryRoundResult round =
        engines_[idx].run_round(states, links, clock_s, rng);
    clock_s += round.duration_s;
    accumulate(result.per_session[idx], round, seen[idx]);
  };

  if (config_.schedule == SessionSchedule::kSequential) {
    for (std::size_t idx = 0; idx < k; ++idx) {
      for (std::size_t r = 0; r < config_.rounds_per_session; ++r) run_one(idx);
    }
  } else {
    for (std::size_t r = 0; r < config_.rounds_per_session; ++r) {
      for (std::size_t idx = 0; idx < k; ++idx) run_one(idx);
    }
  }

  result.total_duration_s = clock_s - t_s;

  // Collapse per-session counts into distinct-tag lists + the fusion input.
  std::size_t population = states.size();
  for (const auto& counts : seen) population = std::max(population, counts.size());
  result.sessions_seen.assign(population, 0);
  for (std::size_t idx = 0; idx < k; ++idx) {
    auto& pass = result.per_session[idx];
    for (std::size_t tag = 0; tag < seen[idx].size(); ++tag) {
      if (seen[idx][tag] > 0) {
        pass.read_tags.push_back(tag);
        ++result.sessions_seen[tag];
      }
    }
  }
  return result;
}

}  // namespace rfidsim::gen2::reliable
