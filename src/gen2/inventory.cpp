#include "gen2/inventory.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace rfidsim::gen2 {

namespace {

/// Per-round registry hooks: aggregate adds once per round, never per slot,
/// so the MAC loop itself stays untouched.
void record_round_metrics(const InventoryRoundResult& result, Session session) {
  static const struct Metrics {
    obs::Counter& rounds = obs::counter("gen2.rounds");
    obs::Counter& total_slots = obs::counter("gen2.total_slots");
    obs::Counter& empty_slots = obs::counter("gen2.empty_slots");
    obs::Counter& collision_slots = obs::counter("gen2.collision_slots");
    obs::Counter& success_slots = obs::counter("gen2.success_slots");
    obs::Counter& singulations = obs::counter("gen2.singulations");
    obs::Counter& mpr_decodes = obs::counter("gen2.mpr_decodes");
    obs::Histogram& duration = obs::histogram(
        "gen2.round_duration_seconds",
        // Rounds run ~1 ms (empty) to ~1 s (huge populations).
        obs::HistogramSpec{.first_upper_bound = 1e-3, .growth = 2.0, .buckets = 12});
    obs::Gauge& final_q = obs::gauge("gen2.final_q");
  } m;
  m.rounds.add(1);
  m.total_slots.add(result.total_slots);
  m.empty_slots.add(result.empty_slots);
  m.collision_slots.add(result.collision_slots);
  m.success_slots.add(result.success_slots);
  m.singulations.add(result.singulated.size());
  m.mpr_decodes.add(result.mpr_decodes);
  m.duration.observe(result.duration_s);
  m.final_q.set(result.final_q);
  // Per-session singulation attribution ({session="s0".."s3"} children of
  // the plain gen2.sessions family): which redundancy axis the reads came
  // from. All four children resolved once — the round loop never takes
  // the registry lock.
  static const std::array<obs::Counter*, 4> session_counters = {
      &obs::counter("gen2.sessions", {{"session", "s0"}}),
      &obs::counter("gen2.sessions", {{"session", "s1"}}),
      &obs::counter("gen2.sessions", {{"session", "s2"}}),
      &obs::counter("gen2.sessions", {{"session", "s3"}}),
  };
  session_counters[static_cast<std::size_t>(session)]->add(result.singulated.size());
}

}  // namespace

InventoryRoundResult InventoryEngine::run_round(std::vector<TagState>& states,
                                                const std::vector<TagLink>& links,
                                                double t_s, Rng& rng) {
  require(states.size() == links.size(),
          "InventoryEngine: states and links must be parallel arrays");
  if (qfp_ < 0.0) qfp_ = config_.q.initial_q;

  InventoryRoundResult result;
  result.duration_s += config_.timing.round_overhead_s;

  auto clamp_q = [&](double q) {
    return std::clamp(q, static_cast<double>(config_.q.min_q),
                      static_cast<double>(config_.q.max_q));
  };
  qfp_ = clamp_q(qfp_);
  int q = static_cast<int>(std::lround(qfp_));

  // Query: every powered, flag-matching tag draws a slot. A jammed command
  // is missed by all tags (they hear garbage and stay put). In dual-target
  // mode the targeted flag alternates between rounds.
  const InventoriedFlag target = config_.dual_target ? next_target_ : config_.target;
  if (config_.dual_target) {
    next_target_ =
        next_target_ == InventoriedFlag::A ? InventoriedFlag::B : InventoriedFlag::A;
  }
  result.duration_s += config_.timing.query_s;
  const bool query_heard = !rng.bernoulli(config_.command_jam_probability);
  if (query_heard) {
    for (auto& st : states) {
      st.on_query(q, target, config_.session, t_s, rng);
    }
  }

  std::size_t slots_remaining = static_cast<std::size_t>(1) << q;
  const std::size_t mpr = config_.mpr_capacity < 1
                              ? 1
                              : static_cast<std::size_t>(config_.mpr_capacity);

  std::vector<std::size_t> repliers;
  std::vector<std::size_t> winners;
  while (slots_remaining > 0 && result.total_slots < config_.q.max_slots_per_round) {
    ++result.total_slots;
    --slots_remaining;

    repliers.clear();
    for (std::size_t i = 0; i < states.size(); ++i) {
      if (states[i].powered() && states[i].replying()) repliers.push_back(i);
    }

    if (repliers.empty()) {
      result.duration_s += config_.timing.empty_slot_s;
      ++result.empty_slots;
      qfp_ = clamp_q(qfp_ - config_.q.step_empty);
    } else {
      // Determine which replies are decodable: all of them when the reader
      // can separate up to `mpr` simultaneous packets and the slot carries
      // no more than that; otherwise only a reply that out-powers the rest
      // by the capture threshold. For mpr == 1 this is exactly the legacy
      // single-reply logic — same branches, same RNG draw order — which is
      // what keeps every pre-MPR bench byte-identical (and is pinned by
      // the MprBitIdentity test).
      winners.clear();
      if (repliers.size() <= mpr) {
        winners = repliers;
      } else {
        double best = -1e18;
        double second = -1e18;
        std::size_t winner = repliers.front();
        for (std::size_t i : repliers) {
          const double p = links[i].rx_power.value();
          if (p > best) {
            second = best;
            best = p;
            winner = i;
          } else if (p > second) {
            second = p;
          }
        }
        if (best - second >= config_.capture_threshold_db) winners.push_back(winner);
      }

      std::size_t slot_successes = 0;
      for (std::size_t w : winners) {
        // RN16 decode, then ACK (a command, jammable), then EPC decode.
        // Each decoded reply runs its own legs: MPR separates the
        // backscatter, but the reader still ACKs every tag individually.
        const TagLink& link = links[w];
        const bool rn16_ok = rng.bernoulli(link.reply_decode_probability);
        const bool ack_ok = rn16_ok && !rng.bernoulli(config_.command_jam_probability);
        const bool epc_ok = ack_ok && rng.bernoulli(link.reply_decode_probability);
        if (epc_ok) {
          states[w].on_acknowledged(t_s);
          result.singulated.push_back(w);
          result.duration_s += config_.timing.singulation_s;
          ++slot_successes;
        }
      }

      if (slot_successes > 0) {
        ++result.success_slots;
        // Reads in a slot that decoded >= 2 simultaneous replies exist
        // only because of MPR; a conventional reader would have lost the
        // whole slot to the collision.
        if (winners.size() >= 2) result.mpr_decodes += slot_successes;
      } else {
        result.duration_s += config_.timing.collided_slot_s;
        ++result.collision_slots;
        qfp_ = clamp_q(qfp_ + config_.q.step_collision);
        // Losers (and failed winners) redraw into the remaining frame.
        const int q_now = static_cast<int>(std::lround(qfp_));
        for (std::size_t i : repliers) states[i].on_reply_lost(q_now, rng);
      }

      // The slot for any remaining replier has been consumed either way.
      for (std::size_t i : repliers) {
        if (states[i].replying()) states[i].on_query_rep();
      }
    }

    // Advance surviving tags to the next slot.
    const bool rep_heard = !rng.bernoulli(config_.command_jam_probability);
    if (rep_heard) {
      for (std::size_t i = 0; i < states.size(); ++i) {
        if (states[i].powered() && states[i].state() == TagProtocolState::Arbitrate) {
          states[i].on_query_rep();
        }
      }
    }
    result.duration_s += config_.timing.query_rep_s;

    // Q adaptation mid-round.
    if (config_.adjust_mid_round) {
      const int q_new = static_cast<int>(std::lround(qfp_));
      if (q_new != q) {
        q = q_new;
        result.duration_s += config_.timing.query_s;
        const bool adj_heard = !rng.bernoulli(config_.command_jam_probability);
        if (adj_heard) {
          for (auto& st : states) st.on_query_adjust(q, rng);
        }
        slots_remaining = static_cast<std::size_t>(1) << q;
      }
    }

    // Early exit once no tag is still contending (a real reader sees only
    // empties from here; cutting them short just saves simulated time).
    const bool any_active = std::any_of(states.begin(), states.end(), [](const TagState& s) {
      return s.powered() && (s.state() == TagProtocolState::Arbitrate ||
                             s.state() == TagProtocolState::Reply);
    });
    if (!any_active) break;
  }

  result.final_q = qfp_;
  if (obs::hooks_enabled()) record_round_metrics(result, config_.session);
  return result;
}

}  // namespace rfidsim::gen2
