#include "fault/schedule.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace rfidsim::fault {

namespace {

/// Fault-injection registry hooks: what each sampled schedule will inject.
void record_schedule_metrics(const FaultSchedule& sched) {
  static const struct Metrics {
    obs::Counter& schedules = obs::counter("fault.schedules_sampled");
    obs::Counter& outages = obs::counter("fault.reader_outages");
    obs::Counter& dead_antennas = obs::counter("fault.dead_antennas");
    obs::Counter& bursts = obs::counter("fault.jamming_bursts");
  } m;
  m.schedules.add(1);
  std::size_t outages = 0;
  char label[24];
  for (std::size_t r = 0; r < sched.reader_outages().size(); ++r) {
    const std::size_t count = sched.reader_outages()[r].size();
    outages += count;
    // Per-reader breakdown as labelled children of the same family. Not
    // cached: schedules sample once per run, far off the round loop.
    if (count > 0) {
      std::snprintf(label, sizeof label, "r%zu", r);
      obs::counter("fault.reader_outages", {{"reader", label}}).add(count);
    }
  }
  m.outages.add(outages);
  std::size_t dead = 0;
  for (const bool d : sched.dead_antennas()) dead += d ? 1 : 0;
  m.dead_antennas.add(dead);
  m.bursts.add(sched.jamming_bursts().size());
}

}  // namespace

FaultSchedule FaultSchedule::sample(const FaultConfig& config, std::size_t reader_count,
                                    std::size_t antenna_count, double t0_s, double t1_s,
                                    Rng& rng) {
  require(t1_s >= t0_s, "FaultSchedule: window must not be inverted");
  require(config.reader.mtbf_s <= 0.0 || config.reader.mttr_s > 0.0,
          "FaultSchedule: MTTR must be positive when MTBF faults are enabled");
  require(config.antenna.probability >= 0.0 && config.antenna.probability <= 1.0,
          "FaultSchedule: antenna outage probability out of [0, 1]");

  FaultSchedule sched;
  sched.reader_outages_.resize(reader_count);

  // Reader crash/restart: alternating up (exp, mean MTBF) and down
  // (exp, mean MTTR) phases per reader, starting up at t0.
  if (config.reader.mtbf_s > 0.0) {
    for (std::size_t r = 0; r < reader_count; ++r) {
      double t = t0_s;
      while (t < t1_s) {
        t += rng.exponential(1.0 / config.reader.mtbf_s);
        if (t >= t1_s) break;
        const double down = rng.exponential(1.0 / config.reader.mttr_s);
        sched.reader_outages_[r].push_back({t, std::min(t + down, t1_s)});
        t += down;
      }
    }
  }

  // Antenna outages: one Bernoulli draw per scene antenna, drawn even for
  // antennas no reader drives so the draw count (and hence the stream
  // consumed) depends only on the scene, not the reader split.
  sched.dead_antennas_.assign(antenna_count, false);
  if (config.antenna.probability > 0.0) {
    for (std::size_t a = 0; a < antenna_count; ++a) {
      sched.dead_antennas_[a] = rng.bernoulli(config.antenna.probability);
    }
  }

  // Jamming bursts: Poisson arrivals, exponential durations.
  if (config.jamming.mean_interarrival_s > 0.0) {
    require(config.jamming.mean_burst_s > 0.0,
            "FaultSchedule: jamming burst duration must be positive");
    sched.jamming_loss_db_ = config.jamming.extra_loss_db;
    double t = t0_s;
    while (true) {
      t += rng.exponential(1.0 / config.jamming.mean_interarrival_s);
      if (t >= t1_s) break;
      const double dur = rng.exponential(1.0 / config.jamming.mean_burst_s);
      sched.jamming_bursts_.push_back({t, std::min(t + dur, t1_s)});
      t += dur;
    }
  }
  // Count only schedules that could inject anything: the all-off default
  // config samples one (empty) schedule per run and would drown the signal.
  if (config.any_enabled() && obs::hooks_enabled()) record_schedule_metrics(sched);
  return sched;
}

bool FaultSchedule::reader_down(std::size_t reader, double t_s) const {
  if (reader >= reader_outages_.size()) return false;
  for (const TimeWindow& w : reader_outages_[reader]) {
    if (w.contains(t_s)) return true;
    if (w.begin_s > t_s) break;  // Sorted: nothing later can contain t.
  }
  return false;
}

double FaultSchedule::reader_up_after(std::size_t reader, double t_s) const {
  if (reader >= reader_outages_.size()) return t_s;
  double t = t_s;
  for (const TimeWindow& w : reader_outages_[reader]) {
    if (w.contains(t)) t = w.end_s;
  }
  return t;
}

bool FaultSchedule::antenna_dead(std::size_t antenna) const {
  return antenna < dead_antennas_.size() && dead_antennas_[antenna];
}

double FaultSchedule::jamming_loss_db(double t_s) const {
  for (const TimeWindow& w : jamming_bursts_) {
    if (w.contains(t_s)) return jamming_loss_db_;
    if (w.begin_s > t_s) break;
  }
  return 0.0;
}

double FaultSchedule::reader_downtime_s(std::size_t reader) const {
  if (reader >= reader_outages_.size()) return 0.0;
  double total = 0.0;
  for (const TimeWindow& w : reader_outages_[reader]) total += w.end_s - w.begin_s;
  return total;
}

}  // namespace rfidsim::fault
