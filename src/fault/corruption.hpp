// Event-log corruption: what middleware does to clean reader output.
//
// Between the reader's buffer and the tracking back end sit serial links,
// store-and-forward daemons, and flat files — all of which drop, repeat,
// mangle, and reorder records in the wild. Two corruption surfaces are
// modelled, both seeded and reproducible:
//   * record level (corrupt_log): dropped, duplicated, bit-flipped and
//     out-of-order ReadEvents — structurally valid but wrong;
//   * text level (corrupt_csv): character mangling of the serialized CSV —
//     rows that no longer parse at all, truncated tails, glued lines.
// track::ResilientIngest is the consumer that must survive both.
#pragma once

#include <cstddef>
#include <string>

#include "common/rng.hpp"
#include "system/events.hpp"

namespace rfidsim::fault {

/// Per-record corruption probabilities. All zero by default (identity).
struct CorruptionConfig {
  /// Record silently lost in transit.
  double drop_probability = 0.0;
  /// Record delivered twice (store-and-forward retry after a lost ack).
  double duplicate_probability = 0.0;
  /// Record content damaged: a bit flips in the tag id (record level) or a
  /// character is mangled (text level).
  double corrupt_probability = 0.0;
  /// Record displaced from chronological order (multi-queue middleware).
  double reorder_probability = 0.0;
  /// How far (in records) a reordered record may travel.
  std::size_t reorder_distance = 4;
  /// Text level only: probability the stream is truncated mid-row at a
  /// uniformly chosen point (connection torn down while flushing).
  double truncate_probability = 0.0;
};

/// What the corruption pass actually did — ground truth for tests and for
/// calibrating ingest quarantine counters.
struct CorruptionStats {
  std::size_t input_records = 0;
  std::size_t dropped = 0;
  std::size_t duplicated = 0;
  std::size_t corrupted = 0;
  std::size_t reordered = 0;
  bool truncated = false;
};

/// Record-level corruption of an in-memory event log. Deterministic given
/// `rng`'s state; a default config returns `log` unchanged.
sys::EventLog corrupt_log(const sys::EventLog& log, const CorruptionConfig& config,
                          Rng& rng, CorruptionStats* stats = nullptr);

/// Text-level corruption of a serialized CSV log (header preserved so the
/// parser's framing survives; data rows are dropped / duplicated /
/// character-mangled / reordered and the tail optionally truncated).
std::string corrupt_csv(const std::string& csv, const CorruptionConfig& config,
                        Rng& rng, CorruptionStats* stats = nullptr);

}  // namespace rfidsim::fault
