#include "fault/corruption.hpp"

#include <algorithm>
#include <sstream>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace rfidsim::fault {

namespace {

void check(const CorruptionConfig& c) {
  for (double p : {c.drop_probability, c.duplicate_probability, c.corrupt_probability,
                   c.reorder_probability, c.truncate_probability}) {
    require(p >= 0.0 && p <= 1.0, "corruption: probability out of [0, 1]");
  }
}

/// Swaps randomly chosen elements up to `distance` positions away. Shared
/// by both corruption surfaces so reordering statistics match.
template <typename T>
std::size_t reorder(std::vector<T>& items, double probability, std::size_t distance,
                    Rng& rng) {
  if (probability <= 0.0 || distance == 0) return 0;
  std::size_t moved = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (!rng.bernoulli(probability)) continue;
    const auto lo = static_cast<std::int64_t>(i > distance ? i - distance : 0);
    const auto hi = static_cast<std::int64_t>(
        std::min(i + distance, items.empty() ? 0 : items.size() - 1));
    const auto j = static_cast<std::size_t>(rng.uniform_int(lo, hi));
    if (j != i) {
      std::swap(items[i], items[j]);
      ++moved;
    }
  }
  return moved;
}

}  // namespace

sys::EventLog corrupt_log(const sys::EventLog& log, const CorruptionConfig& config,
                          Rng& rng, CorruptionStats* stats) {
  check(config);
  CorruptionStats local;
  local.input_records = log.size();

  sys::EventLog out;
  out.reserve(log.size());
  for (const sys::ReadEvent& ev : log) {
    if (rng.bernoulli(config.drop_probability)) {
      ++local.dropped;
      continue;
    }
    sys::ReadEvent copy = ev;
    if (rng.bernoulli(config.corrupt_probability)) {
      // One bit flips in the EPC — the classic undetected serial-link error.
      copy.tag.value ^= 1ULL << (rng.next_u64() % 64);
      ++local.corrupted;
    }
    out.push_back(copy);
    if (rng.bernoulli(config.duplicate_probability)) {
      out.push_back(copy);
      ++local.duplicated;
    }
  }
  local.reordered =
      reorder(out, config.reorder_probability, config.reorder_distance, rng);

  if (stats) *stats = local;
  return out;
}

std::string corrupt_csv(const std::string& csv, const CorruptionConfig& config,
                        Rng& rng, CorruptionStats* stats) {
  check(config);
  CorruptionStats local;

  std::istringstream in(csv);
  std::string header;
  std::getline(in, header);
  std::vector<std::string> rows;
  for (std::string line; std::getline(in, line);) rows.push_back(std::move(line));
  local.input_records = rows.size();

  std::vector<std::string> out_rows;
  out_rows.reserve(rows.size());
  for (std::string& row : rows) {
    if (rng.bernoulli(config.drop_probability)) {
      ++local.dropped;
      continue;
    }
    if (rng.bernoulli(config.corrupt_probability) && !row.empty()) {
      // Mangle one character: either strike it out or overwrite it with a
      // printable garbage byte. Digits become letters, commas vanish —
      // exactly the damage a strict parser chokes on.
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(row.size()) - 1));
      if (rng.bernoulli(0.5)) {
        row.erase(pos, 1);
      } else {
        row[pos] = static_cast<char>('A' + rng.uniform_int(0, 25));
      }
      ++local.corrupted;
    }
    out_rows.push_back(row);
    if (rng.bernoulli(config.duplicate_probability)) {
      out_rows.push_back(out_rows.back());
      ++local.duplicated;
    }
  }
  local.reordered =
      reorder(out_rows, config.reorder_probability, config.reorder_distance, rng);

  std::string out = header + '\n';
  for (const std::string& row : out_rows) {
    out += row;
    out += '\n';
  }
  if (rng.bernoulli(config.truncate_probability) && out.size() > header.size() + 1) {
    const auto cut = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(header.size()) + 1,
                        static_cast<std::int64_t>(out.size()) - 1));
    out.resize(cut);
    local.truncated = true;
  }

  if (stats) *stats = local;
  return out;
}

}  // namespace rfidsim::fault
