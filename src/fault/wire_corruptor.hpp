// Wire-level corruption: what the physical uplink does to framed bytes.
//
// fault::corrupt_log / corrupt_csv model middleware damage to *records*;
// this models the layer below — the serial cable, the flaky radio hop,
// the store-and-forward daemon that tears a connection down mid-frame.
// Damage is bit- and frame-level, which is exactly what the wire module's
// CRC-16 framing is built to catch:
//
//   * independent bit flips at a configurable bit-error rate (thermal
//     noise, marginal cabling) — sampled with geometric gap skipping, so
//     a megabyte at BER 1e-6 costs a handful of draws, not 8M;
//   * burst errors (brownouts, connector chatter): a run of consecutive
//     bytes replaced with noise;
//   * truncation: the frame loses a uniform tail (torn connection);
//   * duplication and adjacent reordering of whole frames (retry after a
//     lost ack, multi-queue middleware) — stream-level, frame-preserving.
//
// Deterministic given the Rng state, and — load-bearing for callers'
// digest contracts — a default-constructed (all-zero) config is a strict
// identity that draws nothing from the Rng.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace rfidsim::fault {

struct WireCorruptorConfig {
  /// Probability each transmitted bit flips independently.
  double bit_error_rate = 0.0;
  /// Probability a frame suffers one noise burst.
  double burst_probability = 0.0;
  /// Burst length is uniform in [1, burst_max_bytes].
  std::size_t burst_max_bytes = 8;
  /// Probability a frame loses a uniform-length tail (at least one byte).
  double truncate_probability = 0.0;
  /// Stream level: probability a frame is delivered twice.
  double duplicate_probability = 0.0;
  /// Stream level: probability a frame swaps with its successor.
  double reorder_probability = 0.0;
};

/// What the corruptor actually did — ground truth for calibrating the
/// decoder's detection counters against.
struct WireCorruptionStats {
  std::size_t frames = 0;          ///< Frames offered.
  std::size_t frames_damaged = 0;  ///< Frames with >= 1 flip/burst/cut.
  std::size_t bits_flipped = 0;
  std::size_t bursts = 0;
  std::size_t truncated = 0;
  std::size_t duplicated = 0;
  std::size_t reordered = 0;
};

class WireCorruptor {
 public:
  explicit WireCorruptor(WireCorruptorConfig config = {});

  /// True when the config can never damage anything (all rates zero); in
  /// that case neither entry point touches `rng`.
  bool identity() const { return identity_; }

  /// Damages one frame's bytes in place (flips, burst, truncation).
  /// Returns true if the frame was altered.
  bool corrupt_frame(std::vector<std::uint8_t>& frame, Rng& rng);

  /// Stream-level pass: duplicates/reorders whole frames, then damages
  /// each frame's bytes. Frames keep their boundaries (framing is the
  /// receiver's problem — that is the point).
  std::vector<std::vector<std::uint8_t>> corrupt_stream(
      std::vector<std::vector<std::uint8_t>> frames, Rng& rng);

  const WireCorruptionStats& stats() const { return stats_; }
  void reset() { stats_ = WireCorruptionStats{}; }
  const WireCorruptorConfig& config() const { return config_; }

 private:
  WireCorruptorConfig config_;
  WireCorruptionStats stats_;
  bool identity_ = true;
};

}  // namespace rfidsim::fault
