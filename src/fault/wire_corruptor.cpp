#include "fault/wire_corruptor.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hpp"

namespace rfidsim::fault {

namespace {

/// Geometric gap to the next flipped bit for independent per-bit error
/// probability `p`: floor(log(1-u) / log(1-p)). One draw per *flip*
/// instead of one per bit, which is what makes BER sweeps over megabytes
/// affordable.
std::uint64_t next_gap(double p, Rng& rng) {
  const double u = rng.uniform();
  return static_cast<std::uint64_t>(std::log1p(-u) / std::log1p(-p));
}

}  // namespace

WireCorruptor::WireCorruptor(WireCorruptorConfig config) : config_(config) {
  require(config_.bit_error_rate >= 0.0 && config_.bit_error_rate < 1.0,
          "WireCorruptor: bit_error_rate must be in [0, 1)");
  require(config_.burst_probability >= 0.0 && config_.burst_probability <= 1.0,
          "WireCorruptor: burst_probability must be in [0, 1]");
  require(config_.truncate_probability >= 0.0 && config_.truncate_probability <= 1.0,
          "WireCorruptor: truncate_probability must be in [0, 1]");
  require(config_.duplicate_probability >= 0.0 &&
              config_.duplicate_probability <= 1.0,
          "WireCorruptor: duplicate_probability must be in [0, 1]");
  require(config_.reorder_probability >= 0.0 && config_.reorder_probability <= 1.0,
          "WireCorruptor: reorder_probability must be in [0, 1]");
  require(config_.burst_max_bytes > 0,
          "WireCorruptor: burst_max_bytes must be positive");
  identity_ = config_.bit_error_rate == 0.0 && config_.burst_probability == 0.0 &&
              config_.truncate_probability == 0.0 &&
              config_.duplicate_probability == 0.0 &&
              config_.reorder_probability == 0.0;
}

bool WireCorruptor::corrupt_frame(std::vector<std::uint8_t>& frame, Rng& rng) {
  ++stats_.frames;
  if (identity_ || frame.empty()) return false;
  bool damaged = false;

  // Independent bit flips via geometric gap skipping.
  if (config_.bit_error_rate > 0.0) {
    const std::uint64_t total_bits = static_cast<std::uint64_t>(frame.size()) * 8;
    std::uint64_t bit = next_gap(config_.bit_error_rate, rng);
    while (bit < total_bits) {
      frame[static_cast<std::size_t>(bit / 8)] ^=
          static_cast<std::uint8_t>(1u << (bit % 8));
      ++stats_.bits_flipped;
      damaged = true;
      bit += 1 + next_gap(config_.bit_error_rate, rng);
    }
  }

  // One noise burst: consecutive bytes replaced with random garbage.
  if (config_.burst_probability > 0.0 && rng.bernoulli(config_.burst_probability)) {
    const std::size_t len = std::min(
        frame.size(), static_cast<std::size_t>(rng.uniform_int(
                          1, static_cast<std::int64_t>(config_.burst_max_bytes))));
    const std::size_t begin = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(frame.size() - len)));
    for (std::size_t i = 0; i < len; ++i) {
      frame[begin + i] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    ++stats_.bursts;
    damaged = true;
  }

  // Torn connection: lose a uniform tail (always at least one byte, never
  // the whole frame — a zero-length delivery is a lost batch, which the
  // uploader's loss model already owns).
  if (config_.truncate_probability > 0.0 &&
      rng.bernoulli(config_.truncate_probability) && frame.size() > 1) {
    const std::size_t keep = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(frame.size() - 1)));
    frame.resize(keep);
    ++stats_.truncated;
    damaged = true;
  }

  if (damaged) ++stats_.frames_damaged;
  return damaged;
}

std::vector<std::vector<std::uint8_t>> WireCorruptor::corrupt_stream(
    std::vector<std::vector<std::uint8_t>> frames, Rng& rng) {
  if (identity_) {
    stats_.frames += frames.size();
    return frames;
  }
  // Stream-level damage first (on intact frames, as middleware would see
  // them), then per-frame byte damage on the final sequence.
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(frames.size() + 4);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    out.push_back(std::move(frames[i]));
    if (config_.duplicate_probability > 0.0 &&
        rng.bernoulli(config_.duplicate_probability)) {
      out.push_back(out.back());
      ++stats_.duplicated;
    }
  }
  if (config_.reorder_probability > 0.0) {
    for (std::size_t i = 0; i + 1 < out.size(); ++i) {
      if (rng.bernoulli(config_.reorder_probability)) {
        std::swap(out[i], out[i + 1]);
        ++stats_.reordered;
        ++i;  // A swapped pair is one displacement, not a bubble sort.
      }
    }
  }
  for (std::vector<std::uint8_t>& frame : out) corrupt_frame(frame, rng);
  return out;
}

}  // namespace rfidsim::fault
