// Infrastructure fault models and their sampled schedules.
//
// The paper quantifies how *tag/antenna* redundancy lifts tracking
// reliability but assumes the read infrastructure itself never fails.
// This module supplies the missing half: deterministic, seeded fault
// processes for the infrastructure — reader crash/restart cycles, dead
// antenna cables, and transient RF jamming bursts — that the portal
// simulator replays during a pass. A schedule is sampled once per run
// from the run's RNG, so identical seeds give identical fault timelines
// and (therefore) identical event logs.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace rfidsim::fault {

/// Reader crash/restart process: exponential time-between-failures with
/// mean `mtbf_s`, exponential repair (restart) time with mean `mttr_s`.
/// mtbf_s <= 0 disables the model.
struct ReaderFaultModel {
  double mtbf_s = 0.0;
  double mttr_s = 0.5;
};

/// Per-antenna hard outage: with probability `probability` an antenna is
/// dead for the whole pass (severed cable, mux port stuck on a dummy
/// load). The RF switch still dwells on the dead port — the reader does
/// not know the cable is gone — so the outage costs read opportunities
/// rather than redistributing them.
struct AntennaOutageModel {
  double probability = 0.0;
};

/// Transient RF jamming: bursts arrive as a Poisson process with mean
/// inter-arrival `mean_interarrival_s` and exponential duration
/// `mean_burst_s`; while a burst is active every link loses
/// `extra_loss_db` of margin (forklift radio, welding arc, a neighbouring
/// portal keying up off-channel). mean_interarrival_s <= 0 disables.
struct JammingModel {
  double mean_interarrival_s = 0.0;
  double mean_burst_s = 0.2;
  double extra_loss_db = 20.0;
};

/// Every infrastructure fault process, all off by default so a
/// default-constructed config is byte-identical to the fault-free
/// simulator.
struct FaultConfig {
  ReaderFaultModel reader{};
  AntennaOutageModel antenna{};
  JammingModel jamming{};

  bool any_enabled() const {
    return reader.mtbf_s > 0.0 || antenna.probability > 0.0 ||
           jamming.mean_interarrival_s > 0.0;
  }
};

/// Half-open interval [begin_s, end_s) on the simulation clock.
struct TimeWindow {
  double begin_s = 0.0;
  double end_s = 0.0;

  bool contains(double t_s) const { return t_s >= begin_s && t_s < end_s; }
};

/// One run's concrete fault timeline, sampled from a FaultConfig.
///
/// Queries are pure and cheap (the window lists are tiny: a handful of
/// crashes per pass at realistic MTBF), so the portal consults the
/// schedule every round without caching.
class FaultSchedule {
 public:
  /// Samples a schedule covering [t0_s, t1_s) for `reader_count` readers
  /// and `antenna_count` scene antennas. All draws come from `rng`;
  /// identical (config, counts, window, seed) give identical schedules.
  static FaultSchedule sample(const FaultConfig& config, std::size_t reader_count,
                              std::size_t antenna_count, double t0_s, double t1_s,
                              Rng& rng);

  /// True while reader `r` is crashed/restarting at `t_s`.
  bool reader_down(std::size_t reader, double t_s) const;

  /// Earliest time >= t_s at which reader `r` is up again (t_s itself when
  /// the reader is not down).
  double reader_up_after(std::size_t reader, double t_s) const;

  /// True when antenna `a` is dead for the whole pass.
  bool antenna_dead(std::size_t antenna) const;

  /// Extra link loss (dB) from jamming bursts active at `t_s`; 0 when the
  /// air is clean.
  double jamming_loss_db(double t_s) const;

  // Introspection (tests, per-reader stats, degraded-mode assessment).
  const std::vector<std::vector<TimeWindow>>& reader_outages() const {
    return reader_outages_;
  }
  const std::vector<bool>& dead_antennas() const { return dead_antennas_; }
  const std::vector<TimeWindow>& jamming_bursts() const { return jamming_bursts_; }

  /// Total seconds reader `r` spends down inside the sampled window.
  double reader_downtime_s(std::size_t reader) const;

 private:
  std::vector<std::vector<TimeWindow>> reader_outages_;  ///< Per reader, sorted.
  std::vector<bool> dead_antennas_;                      ///< Per scene antenna.
  std::vector<TimeWindow> jamming_bursts_;               ///< Sorted, may abut.
  double jamming_loss_db_ = 0.0;
};

}  // namespace rfidsim::fault
