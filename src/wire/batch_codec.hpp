// rfidsim::wire — event-batch payload codec (OpCode::kEventBatch).
//
// One uploaded batch travels as one frame. The payload is versioned (the
// frame's version byte) and compact without being lossy — decode(encode(b))
// reproduces the batch bit for bit, doubles included, so the store digest
// is invariant under the wire hop:
//
//   varint  facility
//   u64le   sent_time_s      (raw IEEE-754 bits)
//   u64le   arrival_time_s   (raw IEEE-754 bits)
//   varint  dict_size        EPC dictionary, ascending:
//   varint  epc[0], then varint delta to each next entry (delta >= 1)
//   varint  event_count, then per event:
//     varint  dict_index     (reference into the EPC dictionary)
//     varint  reader
//     varint  antenna
//     svarint time_bits_delta  zigzag(bits(time) - bits(prev time))
//     svarint rssi_bits_delta  zigzag(bits(rssi) - bits(prev rssi))
//
// The EPC dictionary turns the 64-bit tag id every event would otherwise
// repeat into a small index (batches re-read the same tags constantly —
// that redundancy is the paper's whole subject). Timestamps and RSSI are
// delta-encoded on their *bit patterns*: consecutive reads are close in
// time and signal, so the patterns share exponent and high mantissa bits
// and the signed delta varint stays short, while remaining exactly
// invertible (no quantization — a lossy wire would silently break the
// digest-identity contracts everything downstream leans on).
//
// decode_event_batch() is strict: every index checked against the
// dictionary, every count checked against remaining bytes, trailing bytes
// rejected. A payload that fails any check yields DecodeErrorKind::
// kBadPayload — malformed data is classified, never half-parsed.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "system/events.hpp"
#include "wire/wire.hpp"

namespace rfidsim::wire {

/// One event batch as it crosses the wire. Mirrors fleet::FacilityBatch
/// field-for-field (wire sits below fleet in the layering, so the fleet
/// type cannot appear here; the conversion is trivial and lossless).
struct EventBatch {
  std::uint32_t facility = 0;
  double sent_time_s = 0.0;
  double arrival_time_s = 0.0;
  sys::EventLog events;

  friend bool operator==(const EventBatch&, const EventBatch&);
};

/// Serializes `batch` into a payload (frame with append_frame /
/// encode_event_batch_frame).
std::vector<std::uint8_t> encode_event_batch(const EventBatch& batch);

/// Complete kEventBatch frame, envelope and CRC included.
std::vector<std::uint8_t> encode_event_batch_frame(const EventBatch& batch);

/// Strict payload decode; nullopt on any malformation (kBadPayload).
std::optional<EventBatch> decode_event_batch(const std::uint8_t* payload,
                                             std::size_t size);
std::optional<EventBatch> decode_event_batch(const FrameView& frame);

}  // namespace rfidsim::wire
