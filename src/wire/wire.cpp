#include "wire/wire.hpp"

#include <array>

#include "common/error.hpp"

namespace rfidsim::wire {

namespace {

/// CRC-16-CCITT table for poly 0x1021, generated once at startup.
const std::array<std::uint16_t, 256>& crc_table() {
  static const std::array<std::uint16_t, 256> table = [] {
    std::array<std::uint16_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint16_t crc = static_cast<std::uint16_t>(i << 8);
      for (int bit = 0; bit < 8; ++bit) {
        crc = static_cast<std::uint16_t>((crc & 0x8000u) ? (crc << 1) ^ 0x1021u
                                                         : crc << 1);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

bool known_opcode(std::uint8_t op) {
  switch (static_cast<OpCode>(op)) {
    case OpCode::kEventBatch:
    case OpCode::kCheckpointHeader:
    case OpCode::kCheckpointShard:
    case OpCode::kCheckpointEnd:
      return true;
  }
  return false;
}

/// First SOH at or after `from` (buffer end if none) — the resync target
/// after a corrupt frame.
std::size_t resync_offset(const std::uint8_t* data, std::size_t size,
                          std::size_t from) {
  for (std::size_t i = from; i < size; ++i) {
    if (data[i] == kSoh) return i;
  }
  return size;
}

DecodeResult fail(DecodeErrorKind kind, const std::uint8_t* data,
                  std::size_t size, std::size_t scan_from) {
  DecodeResult result;
  result.ok = false;
  result.error = kind;
  result.next_offset = resync_offset(data, size, scan_from);
  return result;
}

}  // namespace

const char* decode_error_name(DecodeErrorKind kind) {
  switch (kind) {
    case DecodeErrorKind::kBadMagic: return "bad_magic";
    case DecodeErrorKind::kTruncated: return "truncated";
    case DecodeErrorKind::kBadLength: return "bad_length";
    case DecodeErrorKind::kBadCrc: return "bad_crc";
    case DecodeErrorKind::kUnknownVersion: return "unknown_version";
    case DecodeErrorKind::kUnknownOpcode: return "unknown_opcode";
    case DecodeErrorKind::kBadPayload: return "bad_payload";
  }
  return "unknown";
}

std::uint16_t crc16(const std::uint8_t* data, std::size_t size) {
  const auto& table = crc_table();
  std::uint16_t crc = 0xFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = static_cast<std::uint16_t>((crc << 8) ^
                                     table[((crc >> 8) ^ data[i]) & 0xFFu]);
  }
  return crc;
}

std::uint16_t crc16(const std::vector<std::uint8_t>& data) {
  return crc16(data.data(), data.size());
}

void append_frame(std::vector<std::uint8_t>& out, OpCode opcode,
                  const std::vector<std::uint8_t>& payload,
                  std::uint8_t version) {
  require(payload.size() <= kMaxPayloadBytes,
          "wire::append_frame: payload exceeds kMaxPayloadBytes");
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  const std::size_t body_begin = out.size() + 1;  // CRC covers length..payload.
  out.reserve(out.size() + payload.size() + kFrameOverhead);
  out.push_back(kSoh);
  out.push_back(static_cast<std::uint8_t>(len & 0xFFu));
  out.push_back(static_cast<std::uint8_t>((len >> 8) & 0xFFu));
  out.push_back(static_cast<std::uint8_t>((len >> 16) & 0xFFu));
  out.push_back(static_cast<std::uint8_t>((len >> 24) & 0xFFu));
  out.push_back(static_cast<std::uint8_t>(opcode));
  out.push_back(version);
  out.insert(out.end(), payload.begin(), payload.end());
  const std::uint16_t crc = crc16(out.data() + body_begin, out.size() - body_begin);
  out.push_back(static_cast<std::uint8_t>(crc >> 8));  // Big-endian, per Mercury.
  out.push_back(static_cast<std::uint8_t>(crc & 0xFFu));
}

std::vector<std::uint8_t> make_frame(OpCode opcode,
                                     const std::vector<std::uint8_t>& payload,
                                     std::uint8_t version) {
  std::vector<std::uint8_t> out;
  append_frame(out, opcode, payload, version);
  return out;
}

DecodeResult next_frame(const std::uint8_t* data, std::size_t size,
                        std::size_t offset) {
  if (offset >= size) {
    DecodeResult result;
    result.ok = false;
    result.error = DecodeErrorKind::kTruncated;
    result.next_offset = size;
    return result;
  }
  if (data[offset] != kSoh) {
    // Resync from the *next* byte: the bad byte itself cannot start a frame.
    return fail(DecodeErrorKind::kBadMagic, data, size, offset + 1);
  }
  // Envelope prefix: SOH + length(4) + opcode + version.
  if (size - offset < 7) {
    return fail(DecodeErrorKind::kTruncated, data, size, offset + 1);
  }
  const std::uint32_t len = static_cast<std::uint32_t>(data[offset + 1]) |
                            (static_cast<std::uint32_t>(data[offset + 2]) << 8) |
                            (static_cast<std::uint32_t>(data[offset + 3]) << 16) |
                            (static_cast<std::uint32_t>(data[offset + 4]) << 24);
  if (len > kMaxPayloadBytes) {
    return fail(DecodeErrorKind::kBadLength, data, size, offset + 1);
  }
  const std::size_t total = static_cast<std::size_t>(len) + kFrameOverhead;
  if (size - offset < total) {
    return fail(DecodeErrorKind::kTruncated, data, size, offset + 1);
  }
  // CRC over length..payload (header byte excluded), big-endian on the wire.
  const std::size_t body_begin = offset + 1;
  const std::size_t body_size = 6 + len;  // length(4) + opcode + version + payload.
  const std::uint16_t want =
      static_cast<std::uint16_t>((static_cast<std::uint16_t>(data[offset + 7 + len]) << 8) |
                                 data[offset + 8 + len]);
  if (crc16(data + body_begin, body_size) != want) {
    return fail(DecodeErrorKind::kBadCrc, data, size, offset + 1);
  }
  // CRC passed, so the envelope was transmitted as-is: skip the whole
  // frame rather than rescanning its interior for a stray SOH.
  if (data[offset + 6] != kWireVersion) {
    DecodeResult result;
    result.ok = false;
    result.error = DecodeErrorKind::kUnknownVersion;
    result.next_offset = offset + total;
    return result;
  }
  if (!known_opcode(data[offset + 5])) {
    DecodeResult result;
    result.ok = false;
    result.error = DecodeErrorKind::kUnknownOpcode;
    result.next_offset = offset + total;
    return result;
  }
  DecodeResult result;
  result.ok = true;
  result.frame.opcode = static_cast<OpCode>(data[offset + 5]);
  result.frame.version = data[offset + 6];
  result.frame.payload = data + offset + 7;
  result.frame.payload_size = len;
  result.next_offset = offset + total;
  return result;
}

DecodeResult next_frame(const std::vector<std::uint8_t>& buffer,
                        std::size_t offset) {
  return next_frame(buffer.data(), buffer.size(), offset);
}

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80u) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80u);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

void put_varint_signed(std::vector<std::uint8_t>& out, std::int64_t value) {
  put_varint(out, zigzag(value));
}

void put_u64le(std::vector<std::uint8_t>& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  }
}

bool Reader::get_varint(std::uint64_t& value) {
  std::uint64_t result = 0;
  for (std::size_t shift = 0; shift < 70; shift += 7) {
    if (pos >= size) return false;
    const std::uint8_t byte = data[pos++];
    if (shift == 63 && (byte & 0xFEu)) return false;  // Overflows 64 bits.
    result |= static_cast<std::uint64_t>(byte & 0x7Fu) << shift;
    if ((byte & 0x80u) == 0) {
      value = result;
      return true;
    }
  }
  return false;  // More than 10 continuation bytes.
}

bool Reader::get_varint_signed(std::int64_t& value) {
  std::uint64_t raw = 0;
  if (!get_varint(raw)) return false;
  value = unzigzag(raw);
  return true;
}

bool Reader::get_u8(std::uint8_t& value) {
  if (pos >= size) return false;
  value = data[pos++];
  return true;
}

bool Reader::get_u64le(std::uint64_t& value) {
  if (pos + 8 > size) return false;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data[pos + static_cast<std::size_t>(i)]) << (8 * i);
  }
  pos += 8;
  value = v;
  return true;
}

}  // namespace rfidsim::wire
