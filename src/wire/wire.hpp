// rfidsim::wire — checksummed binary framing for the reader-to-backend path.
//
// Until now the uplink shipped CSV text over an idealized channel, so
// fault-layer corruption was row mangling and detection meant "the parser
// choked". Real readers speak compact binary framing — the ThingMagic
// Mercury API that SNIPPETS.md documents is the canonical example — and
// real corruption is bit-level: a flipped bit in a serial stream, a burst
// from a brownout, a torn-down connection mid-frame. This module is that
// wire: every payload travels inside a framed, CRC-16-protected envelope,
// and the decoder *classifies* every way a frame can be bad instead of
// guessing.
//
// Frame layout (Mercury-style, widened for batch payloads):
//
//   ┌────────┬─────────┬────────┬─────────┬──────────────┬─────────┐
//   │  SOH   │ Length  │ OpCode │ Version │   Payload    │  CRC-16 │
//   │ 1 byte │ 4 bytes │ 1 byte │ 1 byte  │  LEN bytes   │ 2 bytes │
//   │  0x01  │ LE u32  │        │         │              │ BE      │
//   └────────┴─────────┴────────┴─────────┴──────────────┴─────────┘
//
// As in the Mercury protocol, the length field counts payload bytes only
// (total frame size = LEN + kFrameOverhead) and the CRC covers everything
// from the length field through the end of the payload — the header byte
// is excluded so it can serve as a pure resynchronization mark. The CRC is
// CRC-16-CCITT (poly 0x1021, init 0xFFFF), stored big-endian, which is the
// ThingMagic convention.
//
// Decode contract: next_frame() never throws and never reads out of
// bounds. A good frame yields a FrameView into the buffer; a bad one
// yields a typed DecodeErrorKind plus the offset at which to resume
// scanning — the decoder resynchronizes by hunting for the next SOH byte,
// so one corrupt frame costs one frame, not the stream.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rfidsim::wire {

/// Frame sync byte: ASCII SOH ("start of heading").
inline constexpr std::uint8_t kSoh = 0x01;

/// Bytes of envelope around the payload: SOH(1) + length(4) + opcode(1) +
/// version(1) + CRC(2).
inline constexpr std::size_t kFrameOverhead = 9;

/// Payload size cap. Large enough for a checkpoint shard chunk, small
/// enough that a corrupted length field cannot make the decoder reserve
/// gigabytes: any length beyond this is classified kBadLength.
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 26;  // 64 MiB

/// Frame types. Values are sparse on purpose (a flipped bit in the opcode
/// should usually land on an unknown opcode, not another valid one).
enum class OpCode : std::uint8_t {
  kEventBatch = 0x22,       ///< One uploaded event batch (batch_codec).
  kCheckpointHeader = 0x60, ///< Store snapshot: stats + shard roster.
  kCheckpointShard = 0x61,  ///< Store snapshot: one shard's timelines.
  kCheckpointEnd = 0x62,    ///< Store snapshot: closing digest.
};

/// Payload format revision carried by every frame. Decoders accept only
/// versions they know; anything else is kUnknownVersion (forward
/// compatibility is explicit, never silent).
inline constexpr std::uint8_t kWireVersion = 1;

/// Why a frame failed to decode. The taxonomy is the observable corruption
/// surface: each kind gets its own counter so an ablation can attribute
/// damage, and tests can assert that a given injected fault is detected
/// *as what it is*.
enum class DecodeErrorKind : std::uint8_t {
  kBadMagic = 0,        ///< Byte at the read position is not SOH.
  kTruncated = 1,       ///< Buffer ends inside the envelope or payload.
  kBadLength = 2,       ///< Length field exceeds kMaxPayloadBytes.
  kBadCrc = 3,          ///< CRC mismatch over length..payload.
  kUnknownVersion = 4,  ///< Version byte the decoder does not speak.
  kUnknownOpcode = 5,   ///< Opcode outside the known set.
  kBadPayload = 6,      ///< Envelope fine, payload malformed (codec layer).
};

/// Stable lower-snake name ("bad_crc", "truncated", ...) for counters,
/// alerts, and log lines.
const char* decode_error_name(DecodeErrorKind kind);

/// One successfully framed region of a byte buffer (payload points into
/// the caller's buffer; valid while the buffer is).
struct FrameView {
  OpCode opcode{};
  std::uint8_t version = 0;
  const std::uint8_t* payload = nullptr;
  std::size_t payload_size = 0;
};

/// Result of one next_frame() step.
struct DecodeResult {
  bool ok = false;
  FrameView frame;             ///< Valid when ok.
  DecodeErrorKind error{};     ///< Valid when !ok.
  /// Offset at which to continue scanning: one past the consumed frame
  /// when ok; the next SOH at or after the failure point (or the buffer
  /// end) when !ok — the resynchronization contract.
  std::size_t next_offset = 0;
};

/// CRC-16-CCITT (poly 0x1021, init 0xFFFF), table-driven. This is the
/// checksum the ThingMagic framing uses over length..payload.
std::uint16_t crc16(const std::uint8_t* data, std::size_t size);
std::uint16_t crc16(const std::vector<std::uint8_t>& data);

/// Appends one complete frame (envelope + payload + CRC) to `out`.
/// Throws ConfigError if `payload` exceeds kMaxPayloadBytes.
void append_frame(std::vector<std::uint8_t>& out, OpCode opcode,
                  const std::vector<std::uint8_t>& payload,
                  std::uint8_t version = kWireVersion);

/// Convenience: one frame as its own buffer.
std::vector<std::uint8_t> make_frame(OpCode opcode,
                                     const std::vector<std::uint8_t>& payload,
                                     std::uint8_t version = kWireVersion);

/// Decodes the frame starting at `offset`. Never throws; see DecodeResult
/// for the resynchronization contract. `offset == size` yields a
/// kTruncated result with next_offset == size (the natural end-of-stream).
DecodeResult next_frame(const std::uint8_t* data, std::size_t size,
                        std::size_t offset);
DecodeResult next_frame(const std::vector<std::uint8_t>& buffer,
                        std::size_t offset = 0);

// --- Varint primitives (shared by batch and checkpoint codecs) ---------
//
// LEB128 unsigned varints and zigzag-mapped signed varints: the compact
// integer encoding the payload codecs build on. Reads are bounds- and
// length-checked (max 10 bytes), returning false on malformed input
// instead of throwing — the codec layer turns that into kBadPayload.

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value);
void put_varint_signed(std::vector<std::uint8_t>& out, std::int64_t value);

/// Cursor over a payload for checked reads.
struct Reader {
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;
  std::size_t pos = 0;

  bool done() const { return pos >= size; }
  bool get_varint(std::uint64_t& value);
  bool get_varint_signed(std::int64_t& value);
  bool get_u8(std::uint8_t& value);
  /// Raw little-endian u64 (used for the checkpoint digest field, where
  /// varint encoding would save nothing on a uniformly random hash).
  bool get_u64le(std::uint64_t& value);
};

void put_u64le(std::vector<std::uint8_t>& out, std::uint64_t value);

/// Zigzag mapping for signed deltas (0,-1,1,-2,... -> 0,1,2,3,...).
constexpr std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
constexpr std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

}  // namespace rfidsim::wire
