#include "wire/batch_codec.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace rfidsim::wire {

namespace {

std::uint64_t bits_of(double x) {
  std::uint64_t u = 0;
  std::memcpy(&u, &x, sizeof u);
  return u;
}

double double_of(std::uint64_t u) {
  double x = 0.0;
  std::memcpy(&x, &u, sizeof x);
  return x;
}

}  // namespace

bool operator==(const EventBatch& a, const EventBatch& b) {
  if (a.facility != b.facility || bits_of(a.sent_time_s) != bits_of(b.sent_time_s) ||
      bits_of(a.arrival_time_s) != bits_of(b.arrival_time_s) ||
      a.events.size() != b.events.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    const sys::ReadEvent& x = a.events[i];
    const sys::ReadEvent& y = b.events[i];
    if (x.tag != y.tag || bits_of(x.time_s) != bits_of(y.time_s) ||
        x.reader_index != y.reader_index || x.antenna_index != y.antenna_index ||
        bits_of(x.rssi.value()) != bits_of(y.rssi.value())) {
      return false;
    }
  }
  return true;
}

std::vector<std::uint8_t> encode_event_batch(const EventBatch& batch) {
  std::vector<std::uint8_t> out;
  out.reserve(16 + batch.events.size() * 12);
  put_varint(out, batch.facility);
  put_u64le(out, bits_of(batch.sent_time_s));
  put_u64le(out, bits_of(batch.arrival_time_s));

  // EPC dictionary: distinct tag ids, ascending, delta-encoded.
  std::vector<std::uint64_t> dict;
  dict.reserve(batch.events.size());
  for (const sys::ReadEvent& ev : batch.events) dict.push_back(ev.tag.value);
  std::sort(dict.begin(), dict.end());
  dict.erase(std::unique(dict.begin(), dict.end()), dict.end());
  put_varint(out, dict.size());
  std::uint64_t prev_epc = 0;
  for (std::size_t i = 0; i < dict.size(); ++i) {
    put_varint(out, i == 0 ? dict[0] : dict[i] - prev_epc);
    prev_epc = dict[i];
  }

  put_varint(out, batch.events.size());
  std::uint64_t prev_time_bits = bits_of(batch.sent_time_s);
  std::uint64_t prev_rssi_bits = 0;
  for (const sys::ReadEvent& ev : batch.events) {
    const auto it = std::lower_bound(dict.begin(), dict.end(), ev.tag.value);
    put_varint(out, static_cast<std::uint64_t>(it - dict.begin()));
    put_varint(out, ev.reader_index);
    put_varint(out, ev.antenna_index);
    const std::uint64_t time_bits = bits_of(ev.time_s);
    const std::uint64_t rssi_bits = bits_of(ev.rssi.value());
    put_varint_signed(out, static_cast<std::int64_t>(time_bits - prev_time_bits));
    put_varint_signed(out, static_cast<std::int64_t>(rssi_bits - prev_rssi_bits));
    prev_time_bits = time_bits;
    prev_rssi_bits = rssi_bits;
  }
  return out;
}

std::vector<std::uint8_t> encode_event_batch_frame(const EventBatch& batch) {
  return make_frame(OpCode::kEventBatch, encode_event_batch(batch));
}

std::optional<EventBatch> decode_event_batch(const std::uint8_t* payload,
                                             std::size_t size) {
  Reader in{payload, size, 0};
  EventBatch batch;
  std::uint64_t facility = 0;
  if (!in.get_varint(facility) || facility > 0xFFFFFFFFull) return std::nullopt;
  batch.facility = static_cast<std::uint32_t>(facility);
  std::uint64_t sent_bits = 0, arrival_bits = 0;
  if (!in.get_u64le(sent_bits) || !in.get_u64le(arrival_bits)) return std::nullopt;
  batch.sent_time_s = double_of(sent_bits);
  batch.arrival_time_s = double_of(arrival_bits);

  std::uint64_t dict_size = 0;
  if (!in.get_varint(dict_size)) return std::nullopt;
  // A dictionary entry costs at least one byte on the wire; a count beyond
  // the remaining payload is malformed, not a huge allocation.
  if (dict_size > size - in.pos) return std::nullopt;
  std::vector<std::uint64_t> dict(static_cast<std::size_t>(dict_size));
  std::uint64_t prev_epc = 0;
  for (std::size_t i = 0; i < dict.size(); ++i) {
    std::uint64_t delta = 0;
    if (!in.get_varint(delta)) return std::nullopt;
    if (i > 0 && (delta == 0 || delta > ~prev_epc)) return std::nullopt;
    prev_epc = i == 0 ? delta : prev_epc + delta;
    dict[i] = prev_epc;
  }

  std::uint64_t count = 0;
  if (!in.get_varint(count)) return std::nullopt;
  // Each event costs at least 5 bytes (five varints).
  if (count > (size - in.pos) / 5 + 1) return std::nullopt;
  batch.events.reserve(static_cast<std::size_t>(count));
  std::uint64_t prev_time_bits = sent_bits;
  std::uint64_t prev_rssi_bits = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t dict_index = 0, reader = 0, antenna = 0;
    std::int64_t time_delta = 0, rssi_delta = 0;
    if (!in.get_varint(dict_index) || !in.get_varint(reader) ||
        !in.get_varint(antenna) || !in.get_varint_signed(time_delta) ||
        !in.get_varint_signed(rssi_delta)) {
      return std::nullopt;
    }
    if (dict_index >= dict.size()) return std::nullopt;
    sys::ReadEvent ev;
    ev.tag = scene::TagId{dict[static_cast<std::size_t>(dict_index)]};
    ev.reader_index = static_cast<std::size_t>(reader);
    ev.antenna_index = static_cast<std::size_t>(antenna);
    prev_time_bits += static_cast<std::uint64_t>(time_delta);
    prev_rssi_bits += static_cast<std::uint64_t>(rssi_delta);
    ev.time_s = double_of(prev_time_bits);
    ev.rssi = DbmPower{double_of(prev_rssi_bits)};
    batch.events.push_back(ev);
  }
  if (!in.done()) return std::nullopt;  // Trailing bytes: malformed.
  return batch;
}

std::optional<EventBatch> decode_event_batch(const FrameView& frame) {
  if (frame.opcode != OpCode::kEventBatch) return std::nullopt;
  return decode_event_batch(frame.payload, frame.payload_size);
}

}  // namespace rfidsim::wire
